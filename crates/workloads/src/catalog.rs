//! The Table II catalog: all 22 benchmarks.
//!
//! Input sizes follow Table II; array footprints derive from each
//! benchmark's actual data structures (e.g. VA's three `n`-element
//! float vectors, MM's three `n x n` matrices). The per-benchmark
//! pattern choices are documented inline with the behaviour the paper
//! reports for that benchmark.

use ds_core::InputSize;

use crate::{ArraySpec, Benchmark, KernelSpec, ReadPattern, Suite, WorkloadSpec};

/// Picks the per-size value.
fn pick<T>(input: InputSize, small: T, big: T) -> T {
    match input {
        InputSize::Small => small,
        InputSize::Big => big,
    }
}

/// Warp count proportional to the streamed footprint, clamped to a
/// realistic occupancy range.
fn warps_for(lines: u64) -> usize {
    (lines / 8).clamp(32, 512) as usize
}

fn a(name: &'static str, bytes: u64) -> ArraySpec {
    ArraySpec { name, bytes }
}

/// BP — Rodinia backprop (shared memory: yes). Layered
/// producer-consumer: the CPU initialises the input units and weight
/// matrix, two kernels stream them. Large miss-rate reduction but
/// modest small-input speedup (shared memory hides L2 latency);
/// big inputs expose the latency and speed up markedly (Fig. 4
/// bottom).
fn bp(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 1536, 10_000);
    let input_bytes = n * 4;
    let weight_bytes = n * 16 * 4;
    WorkloadSpec {
        arrays: vec![
            a("units", input_bytes),
            a("weights", weight_bytes),
            a("hidden", n * 4),
            a("deltas", weight_bytes),
        ],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((2, 1)),
        kernels: vec![
            KernelSpec {
                name: "bp_forward",
                reads: vec![(0, ReadPattern::Stream), (1, ReadPattern::Stream)],
                writes: vec![2],
                warps: warps_for(weight_bytes / 128),
                compute_per_op: 4,
                shared_per_chunk: 32,
                launches: 3,
            },
            KernelSpec {
                name: "bp_adjust",
                reads: vec![(2, ReadPattern::Stream), (1, ReadPattern::Stream)],
                writes: vec![3],
                warps: warps_for(weight_bytes / 128),
                compute_per_op: 4,
                shared_per_chunk: 32,
                launches: 3,
            },
        ],
        cpu_compute_per_line: 24,
    }
}

/// BF — Rodinia BFS (shared memory: no). Irregular frontier
/// expansion over a CSR graph the CPU builds.
fn bf(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 4096, 6000);
    let edges = n * 16;
    WorkloadSpec {
        arrays: vec![
            a("offsets", n * 8),
            a("edges", edges * 4),
            a("visited", n * 4),
        ],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((2, 1)),
        kernels: vec![KernelSpec {
            name: "bfs_level",
            reads: vec![
                (0, ReadPattern::Stream),
                (
                    1,
                    ReadPattern::Random {
                        touches: edges / 4,
                        seed: 0xbf,
                    },
                ),
            ],
            writes: vec![2],
            warps: warps_for(edges * 4 / 128),
            compute_per_op: 2,
            shared_per_chunk: 0,
            launches: 4,
        }],
        cpu_compute_per_line: 24,
    }
}

/// GA — Rodinia gaussian (shared memory: yes). Iterative elimination
/// with heavy in-GPU reuse: total L2 accesses dwarf the one-time
/// compulsory misses, so direct store changes nothing (the paper
/// reports zero speedup and no miss-rate difference).
fn ga(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 256, 700);
    let m = n * n * 4;
    WorkloadSpec {
        arrays: vec![a("matrix", m), a("rhs", n * 4)],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((1, 1)),
        kernels: vec![KernelSpec {
            name: "gauss_eliminate",
            reads: vec![
                (
                    0,
                    ReadPattern::Tiled {
                        tile_lines: 32,
                        reuse: 2,
                    },
                ),
                (1, ReadPattern::Stream),
            ],
            writes: vec![1],
            warps: warps_for(m / 128),
            compute_per_op: 10,
            shared_per_chunk: 32,
            launches: 48,
        }],
        cpu_compute_per_line: 24,
    }
}

/// HT — Rodinia hotspot (shared memory: yes). Stencil over the
/// temperature and power grids the CPU initialises.
fn ht(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 64, 512);
    let grid = n * n * 4;
    WorkloadSpec {
        arrays: vec![a("temp", grid), a("power", grid), a("tout", grid)],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((2, 1)),
        kernels: vec![KernelSpec {
            name: "hotspot_step",
            reads: vec![(0, ReadPattern::Stencil), (1, ReadPattern::Stream)],
            writes: vec![2],
            warps: warps_for(grid / 128),
            compute_per_op: 6,
            shared_per_chunk: 48,
            launches: 10,
        }],
        cpu_compute_per_line: 24,
    }
}

/// KM — Rodinia kmeans (shared memory: yes). Feature matrix streamed
/// per iteration against cached centroids.
fn km(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 2000, 5000);
    let features = n * 34 * 4;
    WorkloadSpec {
        arrays: vec![
            a("features", features),
            a("centroids", 16 * 34 * 4),
            a("membership", n * 4),
        ],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((2, 1)),
        kernels: vec![KernelSpec {
            name: "kmeans_assign",
            reads: vec![
                (0, ReadPattern::Stream),
                (
                    1,
                    ReadPattern::Tiled {
                        tile_lines: 8,
                        reuse: 8,
                    },
                ),
            ],
            writes: vec![2],
            warps: warps_for(features / 128),
            compute_per_op: 8,
            shared_per_chunk: 32,
            launches: 24,
        }],
        cpu_compute_per_line: 24,
    }
}

/// LV — Rodinia lavaMD (shared memory: yes). Box-neighbourhood n-body
/// with very high arithmetic intensity and shared-memory staging:
/// memory latency is fully hidden, so direct store neither helps nor
/// hurts (zero speedup in the paper).
fn lv(input: InputSize) -> WorkloadSpec {
    let boxes: u64 = pick(input, 2, 4);
    let particles = boxes * boxes * boxes * 100;
    let pos = particles * 64;
    WorkloadSpec {
        arrays: vec![a("pos", pos), a("forces", pos)],
        cpu_produces: vec![0],
        cpu_readback: Some((1, 1)),
        kernels: vec![KernelSpec {
            name: "lavamd_force",
            reads: vec![(
                0,
                ReadPattern::Tiled {
                    tile_lines: 16,
                    reuse: 24,
                },
            )],
            writes: vec![1],
            warps: 48,
            compute_per_op: 700,
            shared_per_chunk: 64,
            launches: 4,
        }],
        cpu_compute_per_line: 24,
    }
}

/// LU — Rodinia lud (shared memory: yes). Blocked in-place
/// decomposition of the CPU-produced matrix.
fn lu(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 256, 512);
    let m = n * n * 4;
    WorkloadSpec {
        arrays: vec![a("lumat", m)],
        cpu_produces: vec![0],
        cpu_readback: Some((0, 1)),
        kernels: vec![KernelSpec {
            name: "lud_block",
            reads: vec![(
                0,
                ReadPattern::Tiled {
                    tile_lines: 16,
                    reuse: 3,
                },
            )],
            writes: vec![0],
            warps: warps_for(m / 128),
            compute_per_op: 6,
            shared_per_chunk: 32,
            launches: 8,
        }],
        cpu_compute_per_line: 24,
    }
}

/// NN — Rodinia nearest neighbor (shared memory: no). A single pure
/// stream over the record file the CPU loads: compulsory-miss
/// dominated, the paper's poster child (>10% small-input speedup).
fn nn(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 10_691, 42_764);
    let records = n * 64;
    WorkloadSpec {
        arrays: vec![a("records", records), a("distances", n * 4)],
        cpu_produces: vec![0],
        cpu_readback: Some((1, 1)),
        kernels: vec![KernelSpec {
            name: "nn_distance",
            reads: vec![(0, ReadPattern::Stream)],
            writes: vec![1],
            warps: warps_for(records / 128),
            compute_per_op: 2,
            shared_per_chunk: 0,
            launches: 1,
        }],
        cpu_compute_per_line: 48,
    }
}

/// NW — Rodinia needleman-wunsch (shared memory: yes). Wavefront over
/// the similarity matrix and reference.
fn nw(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 160, 320);
    let m = n * n * 4;
    WorkloadSpec {
        arrays: vec![a("reference", m), a("score", m)],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((1, 1)),
        kernels: vec![KernelSpec {
            name: "nw_diagonal",
            reads: vec![(0, ReadPattern::Stencil), (1, ReadPattern::Stencil)],
            writes: vec![1],
            warps: warps_for(m / 128),
            compute_per_op: 4,
            shared_per_chunk: 32,
            launches: 8,
        }],
        cpu_compute_per_line: 24,
    }
}

/// PT — Rodinia particle filter (shared memory: yes). The paper's
/// explicit null case: "in this benchmark the CPU does not store any
/// data that will later be used by GPU", so direct store changes
/// nothing at all.
fn pt(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 2500, 5000);
    WorkloadSpec {
        arrays: vec![a("particles", n * 32), a("pweights", n * 4)],
        cpu_produces: vec![],
        cpu_readback: None,
        kernels: vec![KernelSpec {
            name: "particle_step",
            reads: vec![(0, ReadPattern::Stream), (1, ReadPattern::Stream)],
            writes: vec![0, 1],
            warps: warps_for(n * 32 / 128),
            compute_per_op: 8,
            shared_per_chunk: 32,
            launches: 4,
        }],
        cpu_compute_per_line: 24,
    }
}

/// SR — Rodinia srad (shared memory: yes). Two alternating stencil
/// kernels; miss-rate reduction without speedup at small inputs.
fn sr(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 256, 512);
    let m = n * n * 4;
    WorkloadSpec {
        arrays: vec![a("image", m), a("coeff", m)],
        cpu_produces: vec![0],
        cpu_readback: Some((0, 1)),
        kernels: vec![
            KernelSpec {
                name: "srad_diffuse",
                reads: vec![(0, ReadPattern::Stencil)],
                writes: vec![1],
                warps: warps_for(m / 128),
                compute_per_op: 8,
                shared_per_chunk: 32,
                launches: 24,
            },
            KernelSpec {
                name: "srad_update",
                reads: vec![(1, ReadPattern::Stencil)],
                writes: vec![0],
                warps: warps_for(m / 128),
                compute_per_op: 8,
                shared_per_chunk: 32,
                launches: 24,
            },
        ],
        cpu_compute_per_line: 24,
    }
}

/// ST — Parboil stencil (shared memory: yes). A 3-D grid at or above
/// L2 capacity for both inputs: enormous access counts swamp the
/// one-time push benefit (zero speedup, unchanged miss rate).
fn st(input: InputSize) -> WorkloadSpec {
    let (x, y, z): (u64, u64, u64) = pick(input, (128, 128, 32), (164, 164, 32));
    let grid = x * y * z * 4;
    WorkloadSpec {
        arrays: vec![a("gridin", grid), a("gridout", grid)],
        cpu_produces: vec![0],
        cpu_readback: Some((1, 1)),
        kernels: vec![KernelSpec {
            name: "stencil27",
            reads: vec![(0, ReadPattern::Stencil)],
            writes: vec![1],
            warps: 256,
            compute_per_op: 6,
            shared_per_chunk: 48,
            launches: 20,
        }],
        cpu_compute_per_line: 24,
    }
}

/// GC — Pannotia graph coloring (shared memory: no). Irregular CSR
/// walk, several recoloring rounds.
fn gc(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 5_000, 32_768);
    // "power" is a sparse power-grid graph (average degree ~4);
    // delaunay-n15 is a planar triangulation with average degree ~6.
    let edges = n * pick(input, 4, 6);
    WorkloadSpec {
        arrays: vec![
            a("goffsets", n * 4),
            a("gedges", edges * 4),
            a("colors", n * 4),
        ],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((2, 1)),
        kernels: vec![KernelSpec {
            name: "color_round",
            reads: vec![
                (0, ReadPattern::Stream),
                (
                    1,
                    ReadPattern::Random {
                        touches: edges / 4,
                        seed: 0x9c,
                    },
                ),
            ],
            writes: vec![2],
            warps: warps_for(edges * 4 / 128),
            compute_per_op: 3,
            shared_per_chunk: 0,
            launches: 6,
        }],
        cpu_compute_per_line: 24,
    }
}

/// FW — Pannotia Floyd-Warshall (shared memory: no). Repeated blocked
/// passes over the distance matrix; big inputs gain markedly
/// (Fig. 4 bottom).
fn fw(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 256, 512);
    let m = n * n * 4;
    WorkloadSpec {
        arrays: vec![a("dist", m)],
        cpu_produces: vec![0],
        cpu_readback: Some((0, 1)),
        kernels: vec![KernelSpec {
            name: "fw_pass",
            reads: vec![(
                0,
                ReadPattern::Tiled {
                    tile_lines: 32,
                    reuse: 1,
                },
            )],
            writes: vec![0],
            warps: warps_for(m / 128),
            compute_per_op: 2,
            shared_per_chunk: 0,
            launches: 10,
        }],
        cpu_compute_per_line: 24,
    }
}

/// MS — Pannotia maximal independent set (shared memory: no).
/// Irregular rounds with enough per-edge work that direct store's
/// savings vanish (zero speedup, reduced miss rate — Fig. 5).
fn ms(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 4_096, 8_192);
    let edges = n * pick(input, 4, 6);
    WorkloadSpec {
        arrays: vec![
            a("moffsets", n * 4),
            a("medges", edges * 4),
            a("mstate", n * 4),
        ],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((2, 1)),
        kernels: vec![KernelSpec {
            name: "mis_round",
            reads: vec![
                (0, ReadPattern::Stream),
                (
                    1,
                    ReadPattern::Random {
                        touches: edges / 4,
                        seed: 0x35,
                    },
                ),
            ],
            writes: vec![2],
            warps: warps_for(edges * 4 / 128),
            compute_per_op: 12,
            shared_per_chunk: 0,
            launches: 20,
        }],
        cpu_compute_per_line: 24,
    }
}

/// SP — Pannotia SSSP (shared memory: no). Like MS but lighter
/// per-edge work: a small net speedup survives.
fn sp(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 4_096, 8_192);
    let edges = n * pick(input, 4, 6);
    WorkloadSpec {
        arrays: vec![
            a("soffsets", n * 4),
            a("sedges", edges * 4),
            a("sdist", n * 4),
        ],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((2, 1)),
        kernels: vec![KernelSpec {
            name: "sssp_relax",
            reads: vec![
                (0, ReadPattern::Stream),
                (
                    1,
                    ReadPattern::Random {
                        touches: edges / 4,
                        seed: 0x59,
                    },
                ),
            ],
            writes: vec![2],
            warps: warps_for(edges * 4 / 128),
            compute_per_op: 3,
            shared_per_chunk: 0,
            launches: 6,
        }],
        cpu_compute_per_line: 24,
    }
}

/// BL — NVIDIA SDK BlackScholes (shared memory: no). Streams option
/// parameters, writes prices; compulsory dominated.
fn bl(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 5000, 10_000);
    let v = n * 4;
    WorkloadSpec {
        arrays: vec![
            a("sprice", v),
            a("strike", v),
            a("expiry", v),
            a("calls", v),
            a("puts", v),
        ],
        cpu_produces: vec![0, 1, 2],
        cpu_readback: Some((3, 1)),
        kernels: vec![KernelSpec {
            name: "black_scholes",
            reads: vec![
                (0, ReadPattern::Stream),
                (1, ReadPattern::Stream),
                (2, ReadPattern::Stream),
            ],
            writes: vec![3, 4],
            warps: warps_for(v / 128).max(32),
            compute_per_op: 6,
            shared_per_chunk: 0,
            launches: 2,
        }],
        cpu_compute_per_line: 48,
    }
}

/// VA — NVIDIA SDK vectorAdd (shared memory: no). The canonical
/// producer-consumer stream.
fn va(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 50_000, 200_000);
    let v = n * 4;
    WorkloadSpec {
        arrays: vec![a("veca", v), a("vecb", v), a("vecc", v)],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((2, 1)),
        kernels: vec![KernelSpec {
            name: "vector_add",
            reads: vec![(0, ReadPattern::Stream), (1, ReadPattern::Stream)],
            writes: vec![2],
            warps: warps_for(v / 128),
            compute_per_op: 1,
            shared_per_chunk: 0,
            launches: 1,
        }],
        cpu_compute_per_line: 48,
    }
}

/// BS — bitonic sort [24] (shared memory: no). Many passes over one
/// array: after the first pass the data is L2-resident either way, so
/// the miss *rate* stays near zero under both schemes.
fn bs(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 262_144, 524_288);
    let v = n * 4;
    WorkloadSpec {
        arrays: vec![a("keys", v)],
        cpu_produces: vec![0],
        cpu_readback: Some((0, 1)),
        kernels: vec![KernelSpec {
            name: "bitonic_pass",
            reads: vec![(0, ReadPattern::Stream)],
            writes: vec![0],
            warps: 256,
            compute_per_op: 2,
            shared_per_chunk: 0,
            launches: 12,
        }],
        cpu_compute_per_line: 48,
    }
}

/// MM — matrix multiplication [25] (shared memory: no). Blocked
/// reads with reuse; at the small input all three matrices fit in the
/// GPU L2 (>10% speedup), at 900x900 they exceed it several-fold and
/// the benefit evaporates — the paper's capacity cliff.
fn mm(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 256, 900);
    let m = n * n * 4;
    WorkloadSpec {
        arrays: vec![a("mata", m), a("matb", m), a("matc", m)],
        cpu_produces: vec![0, 1],
        cpu_readback: Some((2, 1)),
        kernels: vec![KernelSpec {
            name: "matmul",
            reads: vec![
                (
                    0,
                    ReadPattern::Tiled {
                        tile_lines: 64,
                        reuse: 5,
                    },
                ),
                (
                    1,
                    ReadPattern::Tiled {
                        tile_lines: 64,
                        reuse: 5,
                    },
                ),
            ],
            writes: vec![2],
            warps: warps_for(m / 128),
            compute_per_op: 3,
            shared_per_chunk: 0,
            launches: 1,
        }],
        cpu_compute_per_line: 48,
    }
}

/// MT — matrix transpose [25] (shared memory: no). Column-strided
/// reads of the CPU-produced matrix.
fn mt(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 32, 1600);
    let m = n * n * 4;
    let row_lines = (n * 4).div_ceil(128).max(1) as u32;
    WorkloadSpec {
        arrays: vec![a("tin", m), a("tout", m)],
        cpu_produces: vec![0],
        cpu_readback: Some((1, 1)),
        kernels: vec![KernelSpec {
            name: "transpose",
            reads: vec![(
                0,
                ReadPattern::Strided {
                    stride_lines: row_lines,
                },
            )],
            writes: vec![1],
            warps: warps_for(m / 128),
            compute_per_op: 1,
            shared_per_chunk: 0,
            launches: 1,
        }],
        cpu_compute_per_line: 48,
    }
}

/// CH — Cholesky decomposition [26] (shared memory: no). Triangular
/// blocked passes over the CPU-produced matrix.
fn ch(input: InputSize) -> WorkloadSpec {
    let n: u64 = pick(input, 150, 600);
    let m = n * n * 4;
    WorkloadSpec {
        arrays: vec![a("cmat", m)],
        cpu_produces: vec![0],
        cpu_readback: Some((0, 1)),
        kernels: vec![KernelSpec {
            name: "chol_block",
            reads: vec![(
                0,
                ReadPattern::Tiled {
                    tile_lines: 16,
                    reuse: 2,
                },
            )],
            writes: vec![0],
            warps: warps_for(m / 128),
            compute_per_op: 4,
            shared_per_chunk: 0,
            launches: 8,
        }],
        cpu_compute_per_line: 24,
    }
}

/// All 22 benchmarks, in Table II order.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            code: "BP",
            name: "backprop",
            suite: Suite::Rodinia,
            uses_shared_memory: true,
            small_label: "1536",
            big_label: "10000",
            spec_fn: bp,
        },
        Benchmark {
            code: "BF",
            name: "bfs",
            suite: Suite::Rodinia,
            uses_shared_memory: false,
            small_label: "4096",
            big_label: "6000",
            spec_fn: bf,
        },
        Benchmark {
            code: "GA",
            name: "gaussian",
            suite: Suite::Rodinia,
            uses_shared_memory: true,
            small_label: "256x256",
            big_label: "700x700",
            spec_fn: ga,
        },
        Benchmark {
            code: "HT",
            name: "hotspot",
            suite: Suite::Rodinia,
            uses_shared_memory: true,
            small_label: "64x64",
            big_label: "512x512",
            spec_fn: ht,
        },
        Benchmark {
            code: "KM",
            name: "kmeans",
            suite: Suite::Rodinia,
            uses_shared_memory: true,
            small_label: "2000, 34 feat",
            big_label: "5000, 34 feat.",
            spec_fn: km,
        },
        Benchmark {
            code: "LV",
            name: "lavaMD",
            suite: Suite::Rodinia,
            uses_shared_memory: true,
            small_label: "2",
            big_label: "4",
            spec_fn: lv,
        },
        Benchmark {
            code: "LU",
            name: "lud",
            suite: Suite::Rodinia,
            uses_shared_memory: true,
            small_label: "256x256",
            big_label: "512x512",
            spec_fn: lu,
        },
        Benchmark {
            code: "NN",
            name: "nearest-neighbor",
            suite: Suite::Rodinia,
            uses_shared_memory: false,
            small_label: "10691",
            big_label: "42764",
            spec_fn: nn,
        },
        Benchmark {
            code: "NW",
            name: "needleman-wunsch",
            suite: Suite::Rodinia,
            uses_shared_memory: true,
            small_label: "160x160",
            big_label: "320x320",
            spec_fn: nw,
        },
        Benchmark {
            code: "PT",
            name: "particle-filter",
            suite: Suite::Rodinia,
            uses_shared_memory: true,
            small_label: "2500",
            big_label: "5000",
            spec_fn: pt,
        },
        Benchmark {
            code: "SR",
            name: "srad",
            suite: Suite::Rodinia,
            uses_shared_memory: true,
            small_label: "256x256",
            big_label: "512x512",
            spec_fn: sr,
        },
        Benchmark {
            code: "ST",
            name: "stencil",
            suite: Suite::Parboil,
            uses_shared_memory: true,
            small_label: "128x128x32",
            big_label: "164x164x32",
            spec_fn: st,
        },
        Benchmark {
            code: "GC",
            name: "graph-coloring",
            suite: Suite::Pannotia,
            uses_shared_memory: false,
            small_label: "power",
            big_label: "delaunay-n15",
            spec_fn: gc,
        },
        Benchmark {
            code: "FW",
            name: "floyd-warshall",
            suite: Suite::Pannotia,
            uses_shared_memory: false,
            small_label: "256_16384",
            big_label: "512_65536",
            spec_fn: fw,
        },
        Benchmark {
            code: "MS",
            name: "maximal-independent-set",
            suite: Suite::Pannotia,
            uses_shared_memory: false,
            small_label: "power",
            big_label: "delaunay-n13",
            spec_fn: ms,
        },
        Benchmark {
            code: "SP",
            name: "sssp",
            suite: Suite::Pannotia,
            uses_shared_memory: false,
            small_label: "power",
            big_label: "delaunay-n13",
            spec_fn: sp,
        },
        Benchmark {
            code: "BL",
            name: "black-scholes",
            suite: Suite::NvidiaSdk,
            uses_shared_memory: false,
            small_label: "5000",
            big_label: "10000",
            spec_fn: bl,
        },
        Benchmark {
            code: "VA",
            name: "vector-add",
            suite: Suite::NvidiaSdk,
            uses_shared_memory: false,
            small_label: "50000",
            big_label: "200000",
            spec_fn: va,
        },
        Benchmark {
            code: "BS",
            name: "bitonic-sort",
            suite: Suite::Standalone,
            uses_shared_memory: false,
            small_label: "262144",
            big_label: "524288",
            spec_fn: bs,
        },
        Benchmark {
            code: "MM",
            name: "matrix-multiply",
            suite: Suite::Standalone,
            uses_shared_memory: false,
            small_label: "256x256",
            big_label: "900x900",
            spec_fn: mm,
        },
        Benchmark {
            code: "MT",
            name: "matrix-transpose",
            suite: Suite::Standalone,
            uses_shared_memory: false,
            small_label: "32x32",
            big_label: "1600x1600",
            spec_fn: mt,
        },
        Benchmark {
            code: "CH",
            name: "cholesky",
            suite: Suite::Standalone,
            uses_shared_memory: false,
            small_label: "150x150",
            big_label: "600x600",
            spec_fn: ch,
        },
    ]
}

/// Looks up a benchmark by its Table II code name.
pub fn by_code(code: &str) -> Option<Benchmark> {
    all()
        .into_iter()
        .find(|b| ds_core::Scenario::code(b).eq_ignore_ascii_case(code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_core::Scenario;

    #[test]
    fn table_two_has_22_benchmarks() {
        let bs = all();
        assert_eq!(bs.len(), 22);
        let mut codes: Vec<&str> = bs.iter().map(|b| b.code).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), 22, "codes are unique");
    }

    #[test]
    fn shared_memory_column_matches_table_two() {
        let shared: Vec<&str> = all()
            .iter()
            .filter(|b| b.uses_shared_memory())
            .map(|b| b.code)
            .collect();
        assert_eq!(
            shared,
            vec!["BP", "GA", "HT", "KM", "LV", "LU", "NW", "PT", "SR", "ST"]
        );
    }

    #[test]
    fn every_spec_validates_at_both_sizes() {
        for b in all() {
            for input in [InputSize::Small, InputSize::Big] {
                let spec = b.spec(input);
                spec.validate()
                    .unwrap_or_else(|e| panic!("{} {input}: {e}", b.code));
            }
        }
    }

    #[test]
    fn every_source_translates_completely() {
        for b in all() {
            for input in [InputSize::Small, InputSize::Big] {
                let spec = b.spec(input);
                let out = ds_xlat::Translator::new()
                    .translate(&spec.emit_source())
                    .unwrap_or_else(|e| panic!("{} {input}: {e}", b.code));
                assert_eq!(
                    out.plan.len(),
                    spec.arrays.len(),
                    "{}: every array must be planned",
                    b.code
                );
            }
        }
    }

    #[test]
    fn big_inputs_are_bigger() {
        for b in all() {
            let small: u64 = b
                .spec(InputSize::Small)
                .arrays
                .iter()
                .map(|a| a.bytes)
                .sum();
            let big: u64 = b.spec(InputSize::Big).arrays.iter().map(|a| a.bytes).sum();
            assert!(big > small, "{}: big ({big}) <= small ({small})", b.code);
        }
    }

    #[test]
    fn pt_produces_nothing_for_the_gpu() {
        let pt = by_code("PT").unwrap();
        assert!(pt.spec(InputSize::Small).cpu_produces.is_empty());
    }

    #[test]
    fn by_code_is_case_insensitive() {
        assert!(by_code("va").is_some());
        assert!(by_code("VA").is_some());
        assert!(by_code("nope").is_none());
        assert_eq!(by_code("MM").unwrap().code(), "MM");
    }

    #[test]
    fn builds_compile_for_all_benchmarks_small() {
        for b in all() {
            let build = b.build(None, InputSize::Small);
            assert!(!build.kernels.is_empty(), "{}", b.code);
            assert!(build.program.launches() > 0, "{}", b.code);
        }
    }
}
