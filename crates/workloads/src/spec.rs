//! The workload specification language and its compiler.
//!
//! A [`WorkloadSpec`] describes a benchmark's memory behaviour:
//! arrays, which of them the CPU produces, and a sequence of kernels
//! with per-array read patterns. [`WorkloadSpec::compile`] lowers the
//! spec to the simulator's inputs (a CPU [`Program`] plus
//! [`KernelTrace`]s) against a concrete memory layout.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ds_cpu::{CpuOp, Program};
use ds_gpu::{KernelTrace, WarpOp};
use ds_mem::{VirtAddr, LINE_BYTES};

/// Maximum consecutive lines one warp-level load op covers.
const MAX_OP_LINES: u16 = 8;

/// One array of the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySpec {
    /// Source-level variable name (must be a valid C identifier).
    pub name: &'static str,
    /// Size in bytes.
    pub bytes: u64,
}

impl ArraySpec {
    /// Number of 128-byte lines the array spans.
    pub fn lines(&self) -> u64 {
        self.bytes.div_ceil(LINE_BYTES)
    }
}

/// How a kernel walks an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPattern {
    /// Fully coalesced streaming: each line touched once, in order.
    Stream,
    /// Strided walk touching every `stride_lines`-th line (transpose
    /// columns, matrix columns).
    Strided {
        /// Distance between touched lines.
        stride_lines: u32,
    },
    /// Data-dependent walk: `touches` uniformly random lines
    /// (graph benchmarks).
    Random {
        /// Number of line touches.
        touches: u64,
        /// PRNG seed (deterministic per benchmark).
        seed: u64,
    },
    /// Blocked walk with temporal reuse: the array is processed in
    /// tiles, each tile's lines re-read `reuse` times (tiled matmul,
    /// LU).
    Tiled {
        /// Lines per tile.
        tile_lines: u32,
        /// Times each tile is re-read.
        reuse: u32,
    },
    /// Neighbourhood walk: each line plus its predecessor/successor
    /// (stencil rows, wavefront diagonals).
    Stencil,
}

/// One GPU kernel of the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSpec {
    /// Kernel name for traces and the mini-CUDA source.
    pub name: &'static str,
    /// `(array index, pattern)` pairs the kernel reads.
    pub reads: Vec<(usize, ReadPattern)>,
    /// Array indices the kernel writes (streamed, one store per line).
    pub writes: Vec<usize>,
    /// Number of warps.
    pub warps: usize,
    /// Compute cycles between consecutive memory operations.
    pub compute_per_op: u32,
    /// Shared-memory accesses issued per global load chunk (zero for
    /// benchmarks that do not use shared memory). When non-zero the
    /// kernel also *re-reads* staged data from shared memory instead of
    /// global, reproducing the paper's observation that shared-memory
    /// benchmarks "do not involve the GPU L2 cache much".
    pub shared_per_chunk: u16,
    /// Times the CPU launches this kernel.
    pub launches: u32,
}

/// A complete workload description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// All arrays, in declaration order.
    pub arrays: Vec<ArraySpec>,
    /// Indices of arrays the CPU writes before launching kernels.
    pub cpu_produces: Vec<usize>,
    /// Index of an array the CPU reads back after the kernels, with
    /// the fraction of its lines read (numerator over 16).
    pub cpu_readback: Option<(usize, u32)>,
    /// The kernels, launched in order (each `launches` times).
    pub kernels: Vec<KernelSpec>,
    /// Compute cycles between CPU-produced lines (production
    /// intensity).
    pub cpu_compute_per_line: u32,
}

/// A concrete memory layout: array name → base virtual address.
pub trait Layout {
    /// The base address of array `name`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `name` is unknown.
    fn base(&self, name: &str) -> VirtAddr;
}

impl<F: Fn(&str) -> VirtAddr> Layout for F {
    fn base(&self, name: &str) -> VirtAddr {
        self(name)
    }
}

impl WorkloadSpec {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the defect (out-of-range indices,
    /// empty kernels, zero-sized arrays).
    pub fn validate(&self) -> Result<(), String> {
        if self.arrays.is_empty() {
            return Err("workload has no arrays".into());
        }
        for a in &self.arrays {
            if a.bytes == 0 {
                return Err(format!("array {} has zero size", a.name));
            }
        }
        let n = self.arrays.len();
        let check = |i: usize| -> Result<(), String> {
            if i >= n {
                Err(format!("array index {i} out of range ({n} arrays)"))
            } else {
                Ok(())
            }
        };
        for &i in &self.cpu_produces {
            check(i)?;
        }
        if let Some((i, frac)) = self.cpu_readback {
            check(i)?;
            if frac == 0 || frac > 16 {
                return Err("readback fraction must be in 1..=16".into());
            }
        }
        if self.kernels.is_empty() {
            return Err("workload has no kernels".into());
        }
        for k in &self.kernels {
            if k.warps == 0 {
                return Err(format!("kernel {} has zero warps", k.name));
            }
            if k.launches == 0 {
                return Err(format!("kernel {} has zero launches", k.name));
            }
            for &(i, _) in &k.reads {
                check(i)?;
            }
            for &i in &k.writes {
                check(i)?;
            }
        }
        Ok(())
    }

    /// Emits the mini-CUDA source for this workload — every array
    /// `malloc`ed with a constant size and passed to its kernels — so
    /// the automatic translator can plan the direct-store layout.
    pub fn emit_source(&self) -> String {
        let mut src = String::new();
        for a in &self.arrays {
            src.push_str(&format!(
                "#define {}_BYTES {}\n",
                a.name.to_uppercase(),
                a.bytes
            ));
        }
        src.push_str("int main() {\n");
        for a in &self.arrays {
            src.push_str(&format!(
                "    float *{} = (float*)malloc({}_BYTES);\n",
                a.name,
                a.name.to_uppercase()
            ));
        }
        for k in &self.kernels {
            let mut args: Vec<&str> = Vec::new();
            for &(i, _) in &k.reads {
                args.push(self.arrays[i].name);
            }
            for &i in &k.writes {
                args.push(self.arrays[i].name);
            }
            args.dedup();
            src.push_str(&format!(
                "    {}<<<{}, 32>>>({});\n",
                k.name,
                k.warps,
                args.join(", ")
            ));
        }
        src.push_str("    return 0;\n}\n");
        src
    }

    /// Lowers the spec against `layout` into the CPU program and the
    /// kernel traces (indexed by launch order).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn compile<L: Layout>(&self, layout: &L) -> (Program, Vec<KernelTrace>) {
        if let Err(e) = self.validate() {
            panic!("invalid WorkloadSpec: {e}");
        }
        let bases: Vec<VirtAddr> = self.arrays.iter().map(|a| layout.base(a.name)).collect();

        let mut program = Program::new();
        for &i in &self.cpu_produces {
            program.store_array(bases[i], self.arrays[i].bytes, self.cpu_compute_per_line);
        }

        let mut kernels = Vec::new();
        for k in &self.kernels {
            let trace = self.compile_kernel(k, &bases);
            let idx = kernels.len();
            kernels.push(trace);
            for _ in 0..k.launches {
                program.push(CpuOp::Launch(idx));
                program.push(CpuOp::WaitGpu);
            }
        }

        if let Some((i, frac)) = self.cpu_readback {
            let bytes = self.arrays[i].bytes * u64::from(frac) / 16;
            program.load_array(bases[i], bytes.max(LINE_BYTES), 1);
        }
        (program, kernels)
    }

    fn compile_kernel(&self, k: &KernelSpec, bases: &[VirtAddr]) -> KernelTrace {
        let mut trace = KernelTrace::new(k.name);
        // Per-warp op lists, built pattern by pattern.
        let mut warps: Vec<Vec<WarpOp>> = vec![Vec::new(); k.warps];

        for &(arr, pattern) in &k.reads {
            let base = bases[arr];
            let lines = self.arrays[arr].lines();
            self.emit_reads(k, &mut warps, base, lines, pattern, arr);
        }
        for &arr in &k.writes {
            let base = bases[arr];
            let lines = self.arrays[arr].lines();
            // Writes stream, split across warps.
            for (w, (start, count)) in split_lines(lines, k.warps).enumerate() {
                let mut remaining = count;
                let mut cursor = start;
                while remaining > 0 {
                    let chunk = remaining.min(u64::from(MAX_OP_LINES)) as u16;
                    warps[w].push(WarpOp::global_store(
                        base.offset(cursor * LINE_BYTES),
                        chunk,
                    ));
                    if k.compute_per_op > 0 {
                        warps[w].push(WarpOp::Compute(k.compute_per_op));
                    }
                    cursor += u64::from(chunk);
                    remaining -= u64::from(chunk);
                }
            }
        }

        for ops in warps {
            trace.push_warp(ops);
        }
        trace
    }

    fn emit_reads(
        &self,
        k: &KernelSpec,
        warps: &mut [Vec<WarpOp>],
        base: VirtAddr,
        lines: u64,
        pattern: ReadPattern,
        arr: usize,
    ) {
        let push_chunk = |ops: &mut Vec<WarpOp>, addr: VirtAddr, count: u16, stride: u32| {
            ops.push(WarpOp::GlobalLoad {
                base: addr,
                count,
                stride_lines: stride,
            });
            if k.shared_per_chunk > 0 {
                ops.push(WarpOp::Shared {
                    count: k.shared_per_chunk,
                });
            }
            if k.compute_per_op > 0 {
                ops.push(WarpOp::Compute(k.compute_per_op));
            }
        };
        match pattern {
            ReadPattern::Stream => {
                for (w, (start, count)) in split_lines(lines, k.warps).enumerate() {
                    let mut cursor = start;
                    let mut remaining = count;
                    while remaining > 0 {
                        let chunk = remaining.min(u64::from(MAX_OP_LINES)) as u16;
                        push_chunk(&mut warps[w], base.offset(cursor * LINE_BYTES), chunk, 1);
                        cursor += u64::from(chunk);
                        remaining -= u64::from(chunk);
                    }
                }
            }
            ReadPattern::Strided { stride_lines } => {
                let stride = u64::from(stride_lines.max(1));
                // Each warp owns a set of start columns; walks jump by
                // the stride (uncoalesced across rows).
                let touched = lines / stride + u64::from(!lines.is_multiple_of(stride));
                for (w, (start, count)) in split_lines(touched, k.warps).enumerate() {
                    let mut i = start;
                    let mut remaining = count;
                    while remaining > 0 {
                        let chunk = remaining.min(u64::from(MAX_OP_LINES)) as u16;
                        push_chunk(
                            &mut warps[w],
                            base.offset(i * stride * LINE_BYTES),
                            chunk,
                            stride_lines,
                        );
                        i += u64::from(chunk);
                        remaining -= u64::from(chunk);
                    }
                }
            }
            ReadPattern::Random { touches, seed } => {
                // Seed folded with the array index so two random reads
                // of different arrays diverge.
                let mut rng = StdRng::seed_from_u64(seed ^ (arr as u64) << 32);
                for t in 0..touches {
                    let w = (t % k.warps as u64) as usize;
                    let line = rng.gen_range(0..lines);
                    push_chunk(&mut warps[w], base.offset(line * LINE_BYTES), 1, 1);
                }
            }
            ReadPattern::Tiled { tile_lines, reuse } => {
                let tile = u64::from(tile_lines.max(1));
                let tiles = lines.div_ceil(tile);
                for t in 0..tiles {
                    let w = (t % k.warps as u64) as usize;
                    let start = t * tile;
                    let count = tile.min(lines - start);
                    for _ in 0..=reuse {
                        let mut cursor = start;
                        let mut remaining = count;
                        while remaining > 0 {
                            let chunk = remaining.min(u64::from(MAX_OP_LINES)) as u16;
                            push_chunk(&mut warps[w], base.offset(cursor * LINE_BYTES), chunk, 1);
                            cursor += u64::from(chunk);
                            remaining -= u64::from(chunk);
                        }
                    }
                }
            }
            ReadPattern::Stencil => {
                // Each warp reads its band plus one halo line on each
                // side.
                for (w, (start, count)) in split_lines(lines, k.warps).enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let halo_start = start.saturating_sub(1);
                    let halo_count = (count + 2).min(lines - halo_start);
                    let mut cursor = halo_start;
                    let mut remaining = halo_count;
                    while remaining > 0 {
                        let chunk = remaining.min(u64::from(MAX_OP_LINES)) as u16;
                        push_chunk(&mut warps[w], base.offset(cursor * LINE_BYTES), chunk, 1);
                        cursor += u64::from(chunk);
                        remaining -= u64::from(chunk);
                    }
                }
            }
        }
    }
}

/// Splits `lines` into `warps` contiguous chunks, yielding
/// `(start, count)` per warp (later warps may get zero lines).
fn split_lines(lines: u64, warps: usize) -> impl Iterator<Item = (u64, u64)> {
    let per = lines.div_ceil(warps as u64).max(1);
    (0..warps as u64).map(move |w| {
        let start = (w * per).min(lines);
        let end = ((w + 1) * per).min(lines);
        (start, end - start)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_layout(base: u64) -> impl Layout {
        move |name: &str| {
            // Deterministic spread: hash by first byte.
            let off = u64::from(name.as_bytes()[0]) * 0x10_0000;
            VirtAddr::new(base + off)
        }
    }

    fn stream_spec() -> WorkloadSpec {
        WorkloadSpec {
            arrays: vec![
                ArraySpec {
                    name: "a",
                    bytes: 64 * LINE_BYTES,
                },
                ArraySpec {
                    name: "out",
                    bytes: 64 * LINE_BYTES,
                },
            ],
            cpu_produces: vec![0],
            cpu_readback: Some((1, 16)),
            kernels: vec![KernelSpec {
                name: "stream_k",
                reads: vec![(0, ReadPattern::Stream)],
                writes: vec![1],
                warps: 8,
                compute_per_op: 2,
                shared_per_chunk: 0,
                launches: 1,
            }],
            cpu_compute_per_line: 1,
        }
    }

    #[test]
    fn stream_compiles_with_full_coverage() {
        let spec = stream_spec();
        let (program, kernels) = spec.compile(&fixed_layout(0x1000_0000));
        assert_eq!(program.stores(), 64);
        assert_eq!(program.launches(), 1);
        assert_eq!(program.loads(), 64, "full readback");
        assert_eq!(kernels.len(), 1);
        // Every line of `a` is read exactly once across warps.
        let mut touched: Vec<u64> = Vec::new();
        for w in 0..kernels[0].warp_count() {
            for op in kernels[0].warp_ops(w) {
                if matches!(op, WarpOp::GlobalLoad { .. }) {
                    touched.extend(op.touched_lines().iter().map(|v| v.as_u64() / 128));
                }
            }
        }
        touched.sort();
        assert_eq!(touched.len(), 64);
        touched.dedup();
        assert_eq!(touched.len(), 64, "no duplicate stream reads");
    }

    #[test]
    fn multiple_launches_replay_the_trace() {
        let mut spec = stream_spec();
        spec.kernels[0].launches = 3;
        let (program, kernels) = spec.compile(&fixed_layout(0x1000_0000));
        assert_eq!(program.launches(), 3);
        assert_eq!(kernels.len(), 1, "one trace, three launches");
    }

    #[test]
    fn strided_reads_touch_every_stride() {
        let mut spec = stream_spec();
        spec.kernels[0].reads = vec![(0, ReadPattern::Strided { stride_lines: 4 })];
        let zero = |_: &str| VirtAddr::new(0);
        let (_, kernels) = spec.compile(&zero);
        let mut touched: Vec<u64> = Vec::new();
        for w in 0..kernels[0].warp_count() {
            for op in kernels[0].warp_ops(w) {
                if matches!(op, WarpOp::GlobalLoad { .. }) {
                    touched.extend(op.touched_lines().iter().map(|v| v.as_u64() / 128));
                }
            }
        }
        touched.sort();
        assert_eq!(touched, (0..64).step_by(4).collect::<Vec<u64>>());
    }

    #[test]
    fn random_reads_are_deterministic() {
        let mut spec = stream_spec();
        spec.kernels[0].reads = vec![(
            0,
            ReadPattern::Random {
                touches: 100,
                seed: 7,
            },
        )];
        let (_, k1) = spec.compile(&fixed_layout(0));
        let (_, k2) = spec.compile(&fixed_layout(0));
        for w in 0..k1[0].warp_count() {
            assert_eq!(k1[0].warp_ops(w), k2[0].warp_ops(w));
        }
    }

    #[test]
    fn tiled_reads_revisit_tiles() {
        let mut spec = stream_spec();
        spec.kernels[0].reads = vec![(
            0,
            ReadPattern::Tiled {
                tile_lines: 16,
                reuse: 2,
            },
        )];
        let (_, kernels) = spec.compile(&fixed_layout(0));
        let total: u64 = kernels[0].total_global_lines();
        // 64 lines read (reuse+1) = 3 times, plus the 64-line output
        // stream.
        assert_eq!(total, 64 * 3 + 64);
    }

    #[test]
    fn shared_chunks_interleave() {
        let mut spec = stream_spec();
        spec.kernels[0].shared_per_chunk = 32;
        let (_, kernels) = spec.compile(&fixed_layout(0));
        let has_shared = (0..kernels[0].warp_count()).any(|w| {
            kernels[0]
                .warp_ops(w)
                .iter()
                .any(|op| matches!(op, WarpOp::Shared { .. }))
        });
        assert!(has_shared);
    }

    #[test]
    fn validation_catches_defects() {
        let mut spec = stream_spec();
        spec.cpu_produces = vec![9];
        assert!(spec.validate().is_err());

        let mut spec = stream_spec();
        spec.kernels[0].warps = 0;
        assert!(spec.validate().is_err());

        let mut spec = stream_spec();
        spec.arrays[0].bytes = 0;
        assert!(spec.validate().is_err());

        let mut spec = stream_spec();
        spec.cpu_readback = Some((0, 17));
        assert!(spec.validate().is_err());

        assert!(stream_spec().validate().is_ok());
    }

    #[test]
    fn emitted_source_translates_fully() {
        let spec = stream_spec();
        let src = spec.emit_source();
        let out = ds_xlat::Translator::new().translate(&src).unwrap();
        assert_eq!(out.plan.len(), 2, "both arrays flow into the kernel");
        assert_eq!(out.plan.lookup("a").unwrap().size, 64 * LINE_BYTES);
    }

    #[test]
    fn split_lines_partitions_exactly() {
        for (lines, warps) in [(64u64, 8usize), (65, 8), (7, 16), (1, 1)] {
            let parts: Vec<(u64, u64)> = split_lines(lines, warps).collect();
            let total: u64 = parts.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, lines, "lines={lines} warps={warps}");
            // Contiguity.
            let mut expect = 0;
            for &(start, count) in &parts {
                if count > 0 {
                    assert_eq!(start, expect);
                    expect = start + count;
                }
            }
        }
    }
}
