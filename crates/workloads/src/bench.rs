//! The [`Benchmark`] type: Table II metadata + spec generator +
//! [`Scenario`] implementation.

use std::fmt;

use ds_core::{InputSize, Scenario, ScenarioBuild};
use ds_cpu::{AddressSpace, DirectWindow};
use ds_mem::VirtAddr;
use ds_xlat::AllocationPlan;

use crate::WorkloadSpec;

/// The benchmark suites of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia (paper reference \[21\]).
    Rodinia,
    /// Parboil (paper reference \[22\]).
    Parboil,
    /// Pannotia (paper reference \[23\]).
    Pannotia,
    /// NVIDIA SDK samples.
    NvidiaSdk,
    /// Standalone kernels (paper references \[24\]-\[26\]).
    Standalone,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Rodinia => write!(f, "Rodinia"),
            Suite::Parboil => write!(f, "Parboil"),
            Suite::Pannotia => write!(f, "Pannotia"),
            Suite::NvidiaSdk => write!(f, "NVIDIA SDK"),
            Suite::Standalone => write!(f, "standalone"),
        }
    }
}

/// One Table II benchmark.
///
/// Construct via [`catalog`](crate::catalog); each carries the paper's
/// metadata (code name, suite, input labels, shared-memory usage) and
/// a generator producing the [`WorkloadSpec`] for either input size.
#[derive(Clone)]
pub struct Benchmark {
    pub(crate) code: &'static str,
    pub(crate) name: &'static str,
    pub(crate) suite: Suite,
    pub(crate) uses_shared_memory: bool,
    pub(crate) small_label: &'static str,
    pub(crate) big_label: &'static str,
    pub(crate) spec_fn: fn(InputSize) -> WorkloadSpec,
}

impl fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Benchmark")
            .field("code", &self.code)
            .field("suite", &self.suite)
            .field("shared", &self.uses_shared_memory)
            .finish()
    }
}

impl Benchmark {
    /// The full benchmark name (e.g. `"backprop"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The suite the benchmark comes from.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Whether the kernels use the GPU's software-managed shared
    /// memory (Table II's last column).
    pub fn uses_shared_memory(&self) -> bool {
        self.uses_shared_memory
    }

    /// Table II's "Small input" label.
    pub fn small_label(&self) -> &'static str {
        self.small_label
    }

    /// Table II's "Big input" label.
    pub fn big_label(&self) -> &'static str {
        self.big_label
    }

    /// The workload spec for `input`.
    pub fn spec(&self, input: InputSize) -> WorkloadSpec {
        (self.spec_fn)(input)
    }
}

impl Scenario for Benchmark {
    fn code(&self) -> &str {
        self.code
    }

    fn source(&self, input: InputSize) -> String {
        self.spec(input).emit_source()
    }

    fn build(&self, plan: Option<&AllocationPlan>, input: InputSize) -> ScenarioBuild {
        let spec = self.spec(input);
        let (program, kernels) = match plan {
            Some(plan) => {
                let layout = |name: &str| -> VirtAddr {
                    plan.lookup(name)
                        .unwrap_or_else(|| panic!("array `{name}` missing from plan"))
                        .base
                };
                spec.compile(&layout)
            }
            None => {
                // CCSM: the same arrays on the ordinary heap, in
                // declaration order (what the untranslated program
                // would malloc).
                let mut space = AddressSpace::new(DirectWindow::paper_default());
                let bases: Vec<(String, VirtAddr)> = spec
                    .arrays
                    .iter()
                    .map(|a| {
                        let va = space
                            .malloc(a.bytes)
                            .unwrap_or_else(|e| panic!("heap layout of {}: {e}", a.name));
                        (a.name.to_string(), va)
                    })
                    .collect();
                let layout = move |name: &str| -> VirtAddr {
                    bases
                        .iter()
                        .find(|(n, _)| n == name)
                        .unwrap_or_else(|| panic!("array `{name}` missing from heap layout"))
                        .1
                };
                spec.compile(&layout)
            }
        };
        ScenarioBuild { program, kernels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Rodinia.to_string(), "Rodinia");
        assert_eq!(Suite::NvidiaSdk.to_string(), "NVIDIA SDK");
    }

    #[test]
    fn ccsm_build_uses_heap_addresses() {
        let va = catalog::by_code("VA").unwrap();
        let build = va.build(None, InputSize::Small);
        assert!(build.program.stores() > 0);
        assert!(!build.kernels.is_empty());
    }

    #[test]
    fn ds_build_uses_planned_addresses() {
        let va = catalog::by_code("VA").unwrap();
        let src = va.source(InputSize::Small);
        let plan = ds_xlat::Translator::new().translate(&src).unwrap().plan;
        let build = va.build(Some(&plan), InputSize::Small);
        // Every CPU store targets the direct window.
        let window = DirectWindow::paper_default();
        let mut store_count = 0;
        for op in build.program.ops() {
            if let ds_cpu::CpuOp::Store(addr) = op {
                assert!(window.contains(*addr), "store outside window: {addr}");
                store_count += 1;
            }
        }
        assert!(store_count > 0);
    }
}
