//! # ds-workloads — the Table II benchmark suite
//!
//! The paper evaluates direct store on 22 benchmarks from Rodinia,
//! Parboil, Pannotia, the NVIDIA SDK and four standalone kernels
//! (Table II). The original CUDA programs need real GPU hardware (or
//! gem5-gpu) to run; this crate substitutes each with a generator that
//! reproduces the benchmark's *memory behaviour* — which arrays the
//! CPU produces, how the GPU walks them (streaming, strided, tiled,
//! stencil, wavefront, irregular-graph), how much reuse and
//! shared-memory traffic the kernels have, and the Table II input
//! sizes — because those properties are all that direct store's
//! mechanism can see. See `DESIGN.md` for the substitution argument.
//!
//! Each [`Benchmark`] also carries a mini-CUDA source, so the full
//! paper pipeline (automatic translation → allocation plan →
//! simulation) runs end to end for every benchmark.
//!
//! # Examples
//!
//! ```
//! use ds_core::{InputSize, Pipeline};
//! use ds_workloads::catalog;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let va = catalog::by_code("VA").expect("Table II lists VA");
//! assert_eq!(va.suite().to_string(), "NVIDIA SDK");
//! let outcome = Pipeline::paper_default().run_comparison(&va, InputSize::Small)?;
//! assert!(outcome.speedup() >= 1.0);
//! # Ok(())
//! # }
//! ```

pub mod bench;
pub mod catalog;
pub mod spec;

pub use bench::{Benchmark, Suite};
pub use spec::{ArraySpec, KernelSpec, ReadPattern, WorkloadSpec};
