//! Property-based tests: the cache array against a reference model,
//! and MSHR bookkeeping invariants.

use std::collections::{HashMap, HashSet, VecDeque};

use proptest::prelude::*;

use ds_cache::{CacheArray, CacheGeometry, LineState, MshrFile, MshrOutcome, ReplacementPolicy};
use ds_mem::LineAddr;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tag(u32);
impl LineState for Tag {
    fn is_valid(&self) -> bool {
        true
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Fill(u64, u32),
    Invalidate(u64),
    InvalidateAll,
}

fn op_strategy(lines: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..lines).prop_map(Op::Access),
        ((0..lines), any::<u32>()).prop_map(|(l, v)| Op::Fill(l, v)),
        (0..lines).prop_map(Op::Invalidate),
        Just(Op::InvalidateAll),
    ]
}

proptest! {
    /// The array agrees with a straightforward reference model on
    /// membership and state for arbitrary operation sequences (LRU
    /// reference keeps per-set recency queues).
    #[test]
    fn array_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(64), 1..200)
    ) {
        // 4 sets x 2 ways.
        let geom = CacheGeometry::new(4 * 2 * 128, 2).unwrap();
        let mut cache: CacheArray<Tag> = CacheArray::new(geom, ReplacementPolicy::Lru);

        // Reference: per-set LRU list of (line, value).
        let mut sets: HashMap<u64, VecDeque<(u64, u32)>> = HashMap::new();
        let set_of = |l: u64| l % 4;

        for op in ops {
            match op {
                Op::Access(l) => {
                    let line = LineAddr::from_index(l);
                    let set = sets.entry(set_of(l)).or_default();
                    let expect = set.iter().position(|&(x, _)| x == l);
                    let got = cache.access(line).map(|t| *t);
                    match expect {
                        Some(pos) => {
                            let entry = set.remove(pos).unwrap();
                            prop_assert_eq!(got, Some(Tag(entry.1)));
                            set.push_back(entry); // most-recent at back
                        }
                        None => prop_assert_eq!(got, None),
                    }
                }
                Op::Fill(l, v) => {
                    let line = LineAddr::from_index(l);
                    let evicted = cache.fill(line, Tag(v));
                    let set = sets.entry(set_of(l)).or_default();
                    if let Some(pos) = set.iter().position(|&(x, _)| x == l) {
                        set.remove(pos);
                        set.push_back((l, v));
                        prop_assert!(evicted.is_none());
                    } else {
                        if set.len() == 2 {
                            let victim = set.pop_front().unwrap();
                            let e = evicted.expect("full set must evict");
                            prop_assert_eq!(e.line.index(), victim.0);
                            prop_assert_eq!(e.state, Tag(victim.1));
                        } else {
                            prop_assert!(evicted.is_none());
                        }
                        set.push_back((l, v));
                    }
                }
                Op::Invalidate(l) => {
                    let got = cache.invalidate(LineAddr::from_index(l));
                    let set = sets.entry(set_of(l)).or_default();
                    match set.iter().position(|&(x, _)| x == l) {
                        Some(pos) => {
                            let (_, v) = set.remove(pos).unwrap();
                            prop_assert_eq!(got, Some(Tag(v)));
                        }
                        None => prop_assert_eq!(got, None),
                    }
                }
                Op::InvalidateAll => {
                    let expect: usize = sets.values().map(VecDeque::len).sum();
                    prop_assert_eq!(cache.invalidate_all(), expect);
                    sets.clear();
                }
            }
            let expect_occ: u64 = sets.values().map(|s| s.len() as u64).sum();
            prop_assert_eq!(cache.occupancy(), expect_occ);
        }
    }

    /// MSHR bookkeeping: outcomes partition correctly, capacity is
    /// never exceeded, and completion returns exactly the registered
    /// waiters in order.
    #[test]
    fn mshr_invariants(
        lines in proptest::collection::vec(0u64..16, 1..100),
        capacity in 1usize..8
    ) {
        let mut mshrs: MshrFile<usize> = MshrFile::new(capacity);
        let mut reference: HashMap<u64, Vec<usize>> = HashMap::new();
        for (waiter, &l) in lines.iter().enumerate() {
            let outcome = mshrs.alloc(LineAddr::from_index(l), waiter);
            match outcome {
                MshrOutcome::Primary => {
                    prop_assert!(!reference.contains_key(&l));
                    prop_assert!(reference.len() < capacity);
                    reference.insert(l, vec![waiter]);
                }
                MshrOutcome::Secondary => {
                    reference.get_mut(&l).expect("secondary needs primary").push(waiter);
                }
                MshrOutcome::Full => {
                    prop_assert_eq!(reference.len(), capacity);
                    prop_assert!(!reference.contains_key(&l));
                }
            }
            prop_assert_eq!(mshrs.len(), reference.len());
            prop_assert!(mshrs.len() <= capacity);
        }
        let keys: HashSet<u64> = reference.keys().copied().collect();
        for l in keys {
            let waiters = mshrs.complete(LineAddr::from_index(l));
            prop_assert_eq!(waiters, reference.remove(&l).unwrap());
        }
        prop_assert!(mshrs.is_empty());
    }
}
