//! Miss-status holding registers.

use std::collections::HashMap;

use ds_mem::LineAddr;

/// Result of attempting to allocate an MSHR for a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss on this line: the caller must launch the fill.
    Primary,
    /// A fill for this line is already in flight; the waiter was merged.
    Secondary,
    /// No MSHR available: the requester must stall and retry.
    Full,
}

/// A file of miss-status holding registers with request merging.
///
/// Each in-flight line owns one register holding the waiters to notify
/// when the fill completes. Secondary misses on the same line merge
/// into the existing register — the coalescing that lets many GPU warps
/// share one L2 fill.
///
/// # Examples
///
/// ```
/// use ds_cache::{MshrFile, MshrOutcome};
/// use ds_mem::LineAddr;
///
/// let mut mshrs: MshrFile<&str> = MshrFile::new(2);
/// let line = LineAddr::from_index(7);
/// assert_eq!(mshrs.alloc(line, "warp0"), MshrOutcome::Primary);
/// assert_eq!(mshrs.alloc(line, "warp1"), MshrOutcome::Secondary);
/// assert_eq!(mshrs.complete(line), vec!["warp0", "warp1"]);
/// assert!(mshrs.is_empty());
/// ```
#[derive(Debug)]
pub struct MshrFile<W> {
    capacity: usize,
    entries: HashMap<LineAddr, Vec<W>>,
    peak: usize,
    merges: u64,
    stalls: u64,
}

impl<W> MshrFile<W> {
    /// Creates a file with room for `capacity` distinct in-flight lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        MshrFile {
            capacity,
            entries: HashMap::new(),
            peak: 0,
            merges: 0,
            stalls: 0,
        }
    }

    /// Attempts to register `waiter` for a miss on `line`.
    pub fn alloc(&mut self, line: LineAddr, waiter: W) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&line) {
            waiters.push(waiter);
            self.merges += 1;
            return MshrOutcome::Secondary;
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return MshrOutcome::Full;
        }
        self.entries.insert(line, vec![waiter]);
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Primary
    }

    /// Completes the fill for `line`, returning all merged waiters in
    /// arrival order. Returns an empty vector if no miss was pending.
    pub fn complete(&mut self, line: LineAddr) -> Vec<W> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Whether a fill for `line` is in flight.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Number of in-flight lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no fills are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a new primary miss would be refused.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// High-water mark of simultaneously in-flight lines.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of secondary misses merged into existing registers.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of allocations refused because the file was full.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// The in-flight lines with their waiter counts, sorted by line —
    /// a deterministic snapshot for watchdog diagnostics.
    pub fn lines(&self) -> Vec<(LineAddr, usize)> {
        let mut out: Vec<_> = self.entries.iter().map(|(&l, w)| (l, w.len())).collect();
        out.sort_unstable_by_key(|&(l, _)| l.index());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn primary_then_secondary() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        assert_eq!(m.alloc(line(1), 10), MshrOutcome::Primary);
        assert_eq!(m.alloc(line(1), 11), MshrOutcome::Secondary);
        assert_eq!(m.alloc(line(2), 20), MshrOutcome::Primary);
        assert!(m.contains(line(1)));
        assert_eq!(m.len(), 2);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_file_refuses() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        assert_eq!(m.alloc(line(1), 0), MshrOutcome::Primary);
        assert_eq!(m.alloc(line(2), 0), MshrOutcome::Full);
        assert_eq!(m.stalls(), 1);
        // Secondary on the in-flight line still merges even when full.
        assert_eq!(m.alloc(line(1), 1), MshrOutcome::Secondary);
    }

    #[test]
    fn complete_releases_capacity_and_preserves_order() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        m.alloc(line(1), 0);
        m.alloc(line(1), 1);
        m.alloc(line(1), 2);
        assert_eq!(m.complete(line(1)), vec![0, 1, 2]);
        assert!(!m.contains(line(1)));
        assert_eq!(m.alloc(line(2), 9), MshrOutcome::Primary);
    }

    #[test]
    fn complete_without_pending_is_empty() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        assert!(m.complete(line(9)).is_empty());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m: MshrFile<u32> = MshrFile::new(8);
        for i in 0..5 {
            m.alloc(line(i), 0);
        }
        for i in 0..5 {
            m.complete(line(i));
        }
        assert_eq!(m.peak(), 5);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: MshrFile<()> = MshrFile::new(0);
    }
}
