//! Compulsory-miss classification.
//!
//! The paper's evaluation (§IV) argues direct store "should
//! specifically reduce compulsory misses" at the GPU L2 and measures
//! them. A miss is *compulsory* if the cache has never seen the line
//! before; everything else is capacity/conflict ("non-compulsory" —
//! the finer split is not needed to reproduce the paper's figures).

use std::collections::HashSet;

use ds_mem::LineAddr;

/// The classification of a single miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// First-ever reference to the line from this cache.
    Compulsory,
    /// The line had been resident before (capacity or conflict miss).
    NonCompulsory,
}

impl std::fmt::Display for MissKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MissKind::Compulsory => write!(f, "compulsory"),
            MissKind::NonCompulsory => write!(f, "non-compulsory"),
        }
    }
}

/// Tracks every line a cache has ever observed in order to classify
/// misses.
///
/// Lines can also be marked seen *without* a demand miss — this is how
/// direct-store pushes convert what would have been compulsory misses
/// into hits: the push calls [`MissClassifier::mark_seen`], so a later
/// eviction-then-refetch is correctly counted as non-compulsory.
///
/// # Examples
///
/// ```
/// use ds_cache::{MissClassifier, MissKind};
/// use ds_mem::LineAddr;
///
/// let mut c = MissClassifier::new();
/// let l = LineAddr::from_index(3);
/// assert_eq!(c.classify_miss(l), MissKind::Compulsory);
/// assert_eq!(c.classify_miss(l), MissKind::NonCompulsory);
/// ```
#[derive(Debug, Default)]
pub struct MissClassifier {
    seen: HashSet<LineAddr>,
}

impl MissClassifier {
    /// Creates a classifier with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a miss on `line` and records the line as seen.
    pub fn classify_miss(&mut self, line: LineAddr) -> MissKind {
        if self.seen.insert(line) {
            MissKind::Compulsory
        } else {
            MissKind::NonCompulsory
        }
    }

    /// Records `line` as seen without classifying a miss (e.g. a
    /// direct-store push installing the line).
    pub fn mark_seen(&mut self, line: LineAddr) {
        self.seen.insert(line);
    }

    /// Whether `line` has ever been observed.
    pub fn has_seen(&self, line: LineAddr) -> bool {
        self.seen.contains(&line)
    }

    /// Number of distinct lines observed (the cache's footprint).
    pub fn footprint_lines(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn first_miss_is_compulsory() {
        let mut c = MissClassifier::new();
        assert_eq!(c.classify_miss(line(1)), MissKind::Compulsory);
        assert_eq!(c.classify_miss(line(2)), MissKind::Compulsory);
        assert_eq!(c.footprint_lines(), 2);
    }

    #[test]
    fn repeat_miss_is_not_compulsory() {
        let mut c = MissClassifier::new();
        c.classify_miss(line(1));
        assert_eq!(c.classify_miss(line(1)), MissKind::NonCompulsory);
    }

    #[test]
    fn pushed_lines_preempt_compulsory_misses() {
        let mut c = MissClassifier::new();
        c.mark_seen(line(5));
        assert!(c.has_seen(line(5)));
        // Line was pushed, evicted, then demand-missed: not compulsory.
        assert_eq!(c.classify_miss(line(5)), MissKind::NonCompulsory);
    }

    #[test]
    fn display_names() {
        assert_eq!(MissKind::Compulsory.to_string(), "compulsory");
        assert_eq!(MissKind::NonCompulsory.to_string(), "non-compulsory");
    }
}
