//! Cache geometry arithmetic.

use std::fmt;

use ds_mem::{LineAddr, LINE_BYTES};

/// Errors produced when constructing a [`CacheGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// Total size is zero or not a multiple of `assoc * LINE_BYTES`.
    BadSize {
        /// The rejected size in bytes.
        size_bytes: u64,
        /// The requested associativity.
        assoc: u32,
    },
    /// Associativity is zero.
    ZeroAssociativity,
    /// The derived set count is not a power of two (required for
    /// bit-mask indexing).
    SetsNotPowerOfTwo {
        /// The derived set count.
        sets: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::BadSize { size_bytes, assoc } => write!(
                f,
                "cache size {size_bytes} is not a positive multiple of assoc {assoc} x line {LINE_BYTES}"
            ),
            GeometryError::ZeroAssociativity => write!(f, "associativity must be non-zero"),
            GeometryError::SetsNotPowerOfTwo { sets } => {
                write!(f, "derived set count {sets} is not a power of two")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Size/associativity/line arithmetic for a set-associative cache.
///
/// All caches in the simulated system share the 128-byte line size
/// (Table I), so only total size and associativity vary.
///
/// # Examples
///
/// The paper's GPU L2 slice: 2 MB / 4 slices = 512 KB, 16-way:
///
/// ```
/// use ds_cache::CacheGeometry;
/// use ds_mem::LineAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let slice = CacheGeometry::new(512 * 1024, 16)?;
/// assert_eq!(slice.sets(), 256);
/// assert_eq!(slice.lines(), 4096);
/// let l = LineAddr::from_index(0x1_0100);
/// assert_eq!(slice.set_of(l), 0x100 & (slice.sets() - 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    assoc: u32,
    sets: u64,
    stripe_bits: u32,
    stripe_value: u64,
}

impl CacheGeometry {
    /// Builds a geometry from a total size in bytes and associativity.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the size is not a positive multiple
    /// of `assoc * 128` or the derived set count is not a power of two.
    pub fn new(size_bytes: u64, assoc: u32) -> Result<Self, GeometryError> {
        if assoc == 0 {
            return Err(GeometryError::ZeroAssociativity);
        }
        let way_bytes = u64::from(assoc) * LINE_BYTES;
        if size_bytes == 0 || !size_bytes.is_multiple_of(way_bytes) {
            return Err(GeometryError::BadSize { size_bytes, assoc });
        }
        let sets = size_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(GeometryError::SetsNotPowerOfTwo { sets });
        }
        Ok(CacheGeometry {
            size_bytes,
            assoc,
            sets,
            stripe_bits: 0,
            stripe_value: 0,
        })
    }

    /// Derives a geometry for one slice of an address-interleaved
    /// cache: this slice holds exactly the lines whose low
    /// `stripe_bits` index bits equal `stripe_value`, and indexes its
    /// sets by the slice-local line number (dropping the stripe bits),
    /// so the full set array is usable — how real sliced LLCs index.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_value` does not fit in `stripe_bits`.
    pub fn with_stripe(mut self, stripe_bits: u32, stripe_value: u64) -> Self {
        assert!(
            stripe_bits == 0 || stripe_value < (1 << stripe_bits),
            "stripe value {stripe_value} does not fit in {stripe_bits} bits"
        );
        self.stripe_bits = stripe_bits;
        self.stripe_value = stripe_value;
        self
    }

    fn check_stripe(&self, line: LineAddr) {
        debug_assert!(
            self.stripe_bits == 0
                || line.index() & ((1 << self.stripe_bits) - 1) == self.stripe_value,
            "{line} does not belong to stripe {} of {} bits",
            self.stripe_value,
            self.stripe_bits
        );
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Ways per set.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Total line capacity.
    pub fn lines(&self) -> u64 {
        self.sets * u64::from(self.assoc)
    }

    /// The set index a line maps to.
    pub fn set_of(&self, line: LineAddr) -> u64 {
        self.check_stripe(line);
        (line.index() >> self.stripe_bits) & (self.sets - 1)
    }

    /// The tag stored for a line (bits above the set index).
    pub fn tag_of(&self, line: LineAddr) -> u64 {
        self.check_stripe(line);
        (line.index() >> self.stripe_bits) >> self.sets.trailing_zeros()
    }

    /// Reassembles a line address from a set index and tag.
    pub fn line_of(&self, set: u64, tag: u64) -> LineAddr {
        let local = (tag << self.sets.trailing_zeros()) | set;
        LineAddr::from_index((local << self.stripe_bits) | self.stripe_value)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way ({} sets x {}B lines)",
            self.size_bytes / 1024,
            self.assoc,
            self.sets,
            LINE_BYTES
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_construct() {
        // Table I geometries.
        let l1d = CacheGeometry::new(64 * 1024, 2).unwrap();
        assert_eq!(l1d.sets(), 256);
        let l1i = CacheGeometry::new(32 * 1024, 2).unwrap();
        assert_eq!(l1i.sets(), 128);
        let cpu_l2 = CacheGeometry::new(2 * 1024 * 1024, 8).unwrap();
        assert_eq!(cpu_l2.sets(), 2048);
        let gpu_l1 = CacheGeometry::new(16 * 1024, 4).unwrap();
        assert_eq!(gpu_l1.sets(), 32);
        let gpu_l2_slice = CacheGeometry::new(512 * 1024, 16).unwrap();
        assert_eq!(gpu_l2_slice.sets(), 256);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(matches!(
            CacheGeometry::new(1024, 0),
            Err(GeometryError::ZeroAssociativity)
        ));
        assert!(matches!(
            CacheGeometry::new(0, 4),
            Err(GeometryError::BadSize { .. })
        ));
        assert!(matches!(
            CacheGeometry::new(100, 4),
            Err(GeometryError::BadSize { .. })
        ));
        // 3 sets: 3 * 4 * 128 = 1536 bytes.
        assert!(matches!(
            CacheGeometry::new(1536, 4),
            Err(GeometryError::SetsNotPowerOfTwo { sets: 3 })
        ));
    }

    #[test]
    fn striped_geometry_uses_all_sets() {
        // A 4-slice interleave: slice 2 of a 512KB slice cache.
        let g = CacheGeometry::new(512 * 1024, 16)
            .unwrap()
            .with_stripe(2, 2);
        // Lines belonging to slice 2 are 2, 6, 10, ... — consecutive
        // slice-local lines map to consecutive sets.
        assert_eq!(g.set_of(LineAddr::from_index(2)), 0);
        assert_eq!(g.set_of(LineAddr::from_index(6)), 1);
        assert_eq!(g.set_of(LineAddr::from_index(10)), 2);
        // Round trip through (set, tag).
        for idx in [2u64, 6, 1026, 4098, 0xdeadbe * 4 + 2] {
            let line = LineAddr::from_index(idx);
            assert_eq!(g.line_of(g.set_of(line), g.tag_of(line)), line);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn stripe_value_must_fit() {
        let _ = CacheGeometry::new(1024, 2).unwrap().with_stripe(1, 2);
    }

    #[test]
    fn tag_set_roundtrip() {
        let g = CacheGeometry::new(64 * 1024, 2).unwrap();
        for idx in [0u64, 1, 255, 256, 0xdead, u32::MAX as u64] {
            let line = LineAddr::from_index(idx);
            let set = g.set_of(line);
            let tag = g.tag_of(line);
            assert!(set < g.sets());
            assert_eq!(g.line_of(set, tag), line);
        }
    }

    #[test]
    fn error_messages_are_useful() {
        let e = CacheGeometry::new(100, 4).unwrap_err();
        assert!(e.to_string().contains("100"));
        let e = CacheGeometry::new(1536, 4).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn display_summarizes_geometry() {
        let g = CacheGeometry::new(512 * 1024, 16).unwrap();
        assert_eq!(g.to_string(), "512KB 16-way (256 sets x 128B lines)");
    }
}
