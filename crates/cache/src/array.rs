//! The set-associative tag array.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ds_mem::LineAddr;

use crate::CacheGeometry;

/// Per-line state stored in a [`CacheArray`].
///
/// Coherence protocols supply rich state enums (e.g. the Hammer states
/// `MM/M/O/S/I`); simple caches use a plain valid bit. The array only
/// needs to know whether a way currently holds a valid line.
pub trait LineState: Copy + std::fmt::Debug {
    /// Whether this state represents a present, usable line.
    fn is_valid(&self) -> bool;
}

/// Victim selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least-recently used way (the gem5 Ruby default used by
    /// the paper's configuration).
    Lru,
    /// Evict ways in fill order.
    Fifo,
    /// Evict a uniformly random way (deterministic: seeded).
    Random {
        /// Seed for the internal PRNG.
        seed: u64,
    },
    /// Tree pseudo-LRU: one decision bit per internal node of a binary
    /// tree over the ways — the hardware-cheap LRU approximation most
    /// real L2s implement. Requires power-of-two associativity.
    TreePlru,
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted<S> {
    /// Address of the displaced line.
    pub line: LineAddr,
    /// Its state at eviction time (the caller decides whether a
    /// writeback is needed).
    pub state: S,
}

#[derive(Debug, Clone, Copy)]
struct Way<S> {
    tag: u64,
    state: Option<S>,
    stamp: u64,
    pinned: bool,
}

/// A set-associative tag array generic over the per-line state.
///
/// The array is purely structural: it tracks which lines are present,
/// their states and replacement metadata. Timing, MSHRs and protocol
/// logic live in the layers above.
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Debug)]
pub struct CacheArray<S> {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    ways: Vec<Way<S>>,
    clock: u64,
    rng: Option<StdRng>,
    /// Per-set PLRU decision bits (bit `i` = internal tree node `i`;
    /// 0 = next victim is in the left subtree).
    plru: Vec<u64>,
}

impl<S: LineState> CacheArray<S> {
    /// Creates an empty array.
    ///
    /// # Panics
    ///
    /// Panics if [`ReplacementPolicy::TreePlru`] is requested with a
    /// non-power-of-two associativity.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        if policy == ReplacementPolicy::TreePlru {
            assert!(
                geom.assoc().is_power_of_two(),
                "tree-PLRU requires power-of-two associativity, got {}",
                geom.assoc()
            );
        }
        let ways = vec![
            Way {
                tag: 0,
                state: None,
                stamp: 0,
                pinned: false,
            };
            geom.lines() as usize
        ];
        let rng = match policy {
            ReplacementPolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        CacheArray {
            geom,
            policy,
            ways,
            clock: 0,
            rng,
            plru: vec![0; geom.sets() as usize],
        }
    }

    /// Flips the PLRU path bits away from the touched way.
    fn plru_touch(&mut self, set: usize, way: usize) {
        let assoc = self.geom.assoc() as usize;
        if assoc < 2 {
            return;
        }
        let levels = assoc.trailing_zeros();
        let bits = &mut self.plru[set];
        let mut node = 0usize;
        for level in (0..levels).rev() {
            let go_right = (way >> level) & 1 == 1;
            // Point the bit AWAY from the touched way.
            if go_right {
                *bits &= !(1 << node);
            } else {
                *bits |= 1 << node;
            }
            node = 2 * node + 1 + usize::from(go_right);
        }
    }

    /// Follows the PLRU path bits to the pseudo-least-recent way.
    fn plru_victim(&self, set: usize) -> usize {
        let assoc = self.geom.assoc() as usize;
        if assoc < 2 {
            return 0;
        }
        let levels = assoc.trailing_zeros();
        let bits = self.plru[set];
        let mut node = 0usize;
        let mut way = 0usize;
        for _ in 0..levels {
            let go_right = (bits >> node) & 1 == 1;
            way = (way << 1) | usize::from(go_right);
            node = 2 * node + 1 + usize::from(go_right);
        }
        way
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = self.geom.set_of(line) as usize;
        let assoc = self.geom.assoc() as usize;
        set * assoc..(set + 1) * assoc
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        let tag = self.geom.tag_of(line);
        self.set_range(line)
            .find(|&i| self.ways[i].tag == tag && self.ways[i].state.is_some_and(|s| s.is_valid()))
    }

    /// Looks up `line` without touching replacement state.
    pub fn probe(&self, line: LineAddr) -> Option<&S> {
        self.find(line).and_then(|i| self.ways[i].state.as_ref())
    }

    /// Looks up `line`, updating replacement recency on a hit.
    pub fn access(&mut self, line: LineAddr) -> Option<&mut S> {
        let idx = self.find(line)?;
        self.clock += 1;
        match self.policy {
            ReplacementPolicy::Lru => self.ways[idx].stamp = self.clock,
            ReplacementPolicy::TreePlru => {
                let set = self.geom.set_of(line) as usize;
                let way = idx - set * self.geom.assoc() as usize;
                self.plru_touch(set, way);
            }
            _ => {}
        }
        self.ways[idx].state.as_mut()
    }

    /// Mutable access to the state of a resident line, without a
    /// recency update (for protocol actions that are not demand
    /// accesses, e.g. probes).
    pub fn state_mut(&mut self, line: LineAddr) -> Option<&mut S> {
        let idx = self.find(line)?;
        self.ways[idx].state.as_mut()
    }

    /// Inserts `line` with `state`, evicting a victim if the set is
    /// full. If `line` is already resident its state is replaced and no
    /// eviction occurs.
    ///
    /// Pinned ways (see [`CacheArray::pin`]) are never chosen as
    /// victims.
    ///
    /// # Panics
    ///
    /// Panics if every way in the set is pinned — callers must bound
    /// the number of simultaneously pinned lines per set (in the
    /// simulator this is enforced by sizing MSHR capacity below the
    /// associativity).
    pub fn fill(&mut self, line: LineAddr, state: S) -> Option<Evicted<S>> {
        self.clock += 1;
        let tag = self.geom.tag_of(line);
        if let Some(idx) = self.find(line) {
            self.ways[idx].state = Some(state);
            self.ways[idx].stamp = self.clock;
            if self.policy == ReplacementPolicy::TreePlru {
                let set = self.geom.set_of(line) as usize;
                self.plru_touch(set, idx - set * self.geom.assoc() as usize);
            }
            return None;
        }
        let range = self.set_range(line);
        // Prefer an invalid way.
        let victim = range
            .clone()
            .find(|&i| !self.ways[i].state.is_some_and(|s| s.is_valid()))
            .or_else(|| self.pick_victim(range.clone()));
        let Some(idx) = victim else {
            panic!(
                "all {} ways pinned in set {} while filling {line}",
                self.geom.assoc(),
                self.geom.set_of(line)
            );
        };
        let evicted = self.ways[idx]
            .state
            .filter(|s| s.is_valid())
            .map(|state| Evicted {
                line: self
                    .geom
                    .line_of(self.geom.set_of(line), self.ways[idx].tag),
                state,
            });
        self.ways[idx] = Way {
            tag,
            state: Some(state),
            stamp: self.clock,
            pinned: false,
        };
        if self.policy == ReplacementPolicy::TreePlru {
            let set = self.geom.set_of(line) as usize;
            self.plru_touch(set, idx - set * self.geom.assoc() as usize);
        }
        evicted
    }

    fn pick_victim(&mut self, range: std::ops::Range<usize>) -> Option<usize> {
        let candidates: Vec<usize> = range.clone().filter(|&i| !self.ways[i].pinned).collect();
        if candidates.is_empty() {
            return None;
        }
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                candidates.into_iter().min_by_key(|&i| self.ways[i].stamp)
            }
            ReplacementPolicy::Random { .. } => {
                let rng = self.rng.as_mut().expect("random policy has rng");
                let pick = rng.gen_range(0..candidates.len());
                Some(candidates[pick])
            }
            ReplacementPolicy::TreePlru => {
                let assoc = self.geom.assoc() as usize;
                let set = range.start / assoc;
                let idx = range.start + self.plru_victim(set);
                if self.ways[idx].pinned {
                    // Fall back to any unpinned way.
                    candidates.into_iter().next()
                } else {
                    Some(idx)
                }
            }
        }
    }

    /// Removes `line`, returning its state if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<S> {
        let idx = self.find(line)?;
        self.ways[idx].pinned = false;
        self.ways[idx].state.take()
    }

    /// Invalidates every line, returning the number dropped. Models the
    /// GPU L1 flash-invalidate at kernel launch (paper §III.A).
    pub fn invalidate_all(&mut self) -> usize {
        let mut dropped = 0;
        for way in &mut self.ways {
            if way.state.is_some_and(|s| s.is_valid()) {
                dropped += 1;
            }
            way.state = None;
            way.pinned = false;
        }
        dropped
    }

    /// Protects a resident line from eviction (used while a coherence
    /// transaction on the line is in flight). Returns `false` if the
    /// line is not resident.
    pub fn pin(&mut self, line: LineAddr) -> bool {
        match self.find(line) {
            Some(idx) => {
                self.ways[idx].pinned = true;
                true
            }
            None => false,
        }
    }

    /// Releases a [`pin`](CacheArray::pin). Returns `false` if the line
    /// is not resident.
    pub fn unpin(&mut self, line: LineAddr) -> bool {
        match self.find(line) {
            Some(idx) => {
                self.ways[idx].pinned = false;
                true
            }
            None => false,
        }
    }

    /// Whether every way of `line`'s set holds a valid line (an
    /// insertion would have to evict).
    pub fn set_is_full(&self, line: LineAddr) -> bool {
        self.set_range(line)
            .all(|i| self.ways[i].state.is_some_and(|s| s.is_valid()))
    }

    /// Number of valid resident lines.
    pub fn occupancy(&self) -> u64 {
        self.ways
            .iter()
            .filter(|w| w.state.is_some_and(|s| s.is_valid()))
            .count() as u64
    }

    /// Iterates over `(line, state)` for every valid resident line.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &S)> + '_ {
        let assoc = self.geom.assoc() as usize;
        self.ways.iter().enumerate().filter_map(move |(i, w)| {
            let state = w.state.as_ref().filter(|s| s.is_valid())?;
            let set = (i / assoc) as u64;
            Some((self.geom.line_of(set, w.tag), state))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheGeometry;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct V(u32);
    impl LineState for V {
        fn is_valid(&self) -> bool {
            true
        }
    }

    fn tiny() -> CacheArray<V> {
        // 2 sets, 2 ways.
        let geom = CacheGeometry::new(2 * 2 * 128, 2).unwrap();
        CacheArray::new(geom, ReplacementPolicy::Lru)
    }

    /// Lines that all map to set 0 of the tiny() cache.
    fn set0_line(i: u64) -> LineAddr {
        LineAddr::from_index(i * 2)
    }

    #[test]
    fn fill_then_hit() {
        let mut c = tiny();
        let l = set0_line(1);
        assert!(c.access(l).is_none());
        assert!(c.fill(l, V(7)).is_none());
        assert_eq!(c.access(l), Some(&mut V(7)));
        assert_eq!(c.probe(l), Some(&V(7)));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        let (a, b, d) = (set0_line(1), set0_line(2), set0_line(3));
        c.fill(a, V(1));
        c.fill(b, V(2));
        // Touch `a` so `b` is LRU.
        c.access(a);
        let evicted = c.fill(d, V(3)).expect("set is full");
        assert_eq!(evicted.line, b);
        assert_eq!(evicted.state, V(2));
        assert!(c.probe(a).is_some());
        assert!(c.probe(b).is_none());
        assert!(c.probe(d).is_some());
    }

    #[test]
    fn fifo_ignores_recency() {
        let geom = CacheGeometry::new(2 * 2 * 128, 2).unwrap();
        let mut c: CacheArray<V> = CacheArray::new(geom, ReplacementPolicy::Fifo);
        let (a, b, d) = (set0_line(1), set0_line(2), set0_line(3));
        c.fill(a, V(1));
        c.fill(b, V(2));
        c.access(a); // would save `a` under LRU
        let evicted = c.fill(d, V(3)).unwrap();
        assert_eq!(
            evicted.line, a,
            "FIFO evicts oldest fill regardless of touches"
        );
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed| {
            let geom = CacheGeometry::new(2 * 2 * 128, 2).unwrap();
            let mut c: CacheArray<V> = CacheArray::new(geom, ReplacementPolicy::Random { seed });
            c.fill(set0_line(1), V(1));
            c.fill(set0_line(2), V(2));
            c.fill(set0_line(3), V(3)).unwrap().line
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn refill_of_resident_line_replaces_state_without_eviction() {
        let mut c = tiny();
        let l = set0_line(1);
        c.fill(l, V(1));
        assert!(c.fill(l, V(9)).is_none());
        assert_eq!(c.probe(l), Some(&V(9)));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        let l = set0_line(1);
        c.fill(l, V(1));
        assert_eq!(c.invalidate(l), Some(V(1)));
        assert_eq!(c.invalidate(l), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_all_flash_clears() {
        let mut c = tiny();
        c.fill(set0_line(1), V(1));
        c.fill(LineAddr::from_index(1), V(2)); // set 1
        assert_eq!(c.invalidate_all(), 2);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn pinned_lines_survive_eviction_pressure() {
        let mut c = tiny();
        let (a, b, d) = (set0_line(1), set0_line(2), set0_line(3));
        c.fill(a, V(1));
        c.fill(b, V(2));
        assert!(c.pin(a));
        c.access(b); // make `a` the LRU victim candidate
        let evicted = c.fill(d, V(3)).unwrap();
        assert_eq!(evicted.line, b, "pinned line must be skipped");
        assert!(c.unpin(a));
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn all_ways_pinned_panics() {
        let mut c = tiny();
        c.fill(set0_line(1), V(1));
        c.fill(set0_line(2), V(2));
        c.pin(set0_line(1));
        c.pin(set0_line(2));
        c.fill(set0_line(3), V(3));
    }

    #[test]
    fn iter_reconstructs_addresses() {
        let mut c = tiny();
        let lines = [set0_line(1), set0_line(5), LineAddr::from_index(3)];
        for (i, &l) in lines.iter().enumerate() {
            c.fill(l, V(i as u32));
        }
        let mut seen: Vec<LineAddr> = c.iter().map(|(l, _)| l).collect();
        seen.sort();
        let mut expect = lines.to_vec();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn set_is_full_tracks_ways() {
        let mut c = tiny();
        let l = set0_line(1);
        assert!(!c.set_is_full(l));
        c.fill(set0_line(1), V(1));
        assert!(!c.set_is_full(l));
        c.fill(set0_line(2), V(2));
        assert!(c.set_is_full(l));
        c.invalidate(set0_line(1));
        assert!(!c.set_is_full(l));
    }

    #[test]
    fn tree_plru_protects_the_most_recent_way() {
        // 1 set, 4 ways. PLRU is an approximation of LRU, but one
        // property is exact: the most recently touched way is never
        // the next victim.
        let geom = CacheGeometry::new(4 * 128, 4).unwrap();
        let mut c: CacheArray<V> = CacheArray::new(geom, ReplacementPolicy::TreePlru);
        let line = |i: u64| LineAddr::from_index(i);
        for i in 0..4 {
            c.fill(line(i), V(i as u32));
        }
        for touched in 0..4u64 {
            c.access(line(touched));
            let evicted = c.fill(line(100 + touched), V(0)).unwrap();
            assert_ne!(evicted.line, line(touched), "most-recent way evicted");
            // Restore the evicted resident for the next round.
            c.invalidate(line(100 + touched));
            c.fill(evicted.line, evicted.state);
        }
    }

    #[test]
    fn tree_plru_victim_cycles_through_all_ways() {
        // Filling without touching must eventually use every way.
        let geom = CacheGeometry::new(8 * 128, 8).unwrap();
        let mut c: CacheArray<V> = CacheArray::new(geom, ReplacementPolicy::TreePlru);
        for i in 0..8 {
            assert!(c.fill(LineAddr::from_index(i), V(i as u32)).is_none());
        }
        assert_eq!(c.occupancy(), 8, "all ways used before any eviction");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_non_power_of_two_assoc() {
        let geom = CacheGeometry::new(3 * 128, 3).unwrap();
        let _: CacheArray<V> = CacheArray::new(geom, ReplacementPolicy::TreePlru);
    }

    #[test]
    fn pin_of_absent_line_reports_false() {
        let mut c = tiny();
        assert!(!c.pin(set0_line(1)));
        assert!(!c.unpin(set0_line(1)));
    }
}
