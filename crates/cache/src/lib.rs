//! # ds-cache — cache structures for the integrated CPU-GPU simulator
//!
//! Generic building blocks shared by every cache in the modelled system
//! (CPU L1D/L1I/L2, per-SM GPU L1s, the four GPU L2 slices):
//!
//! * [`CacheGeometry`] — size/associativity/line-size arithmetic,
//! * [`CacheArray`] — a set-associative tag array generic over the
//!   per-line coherence state, with pluggable [`ReplacementPolicy`],
//! * [`MshrFile`] — miss-status holding registers with request merging,
//! * [`MissClassifier`] — splits compulsory from non-compulsory misses
//!   (the paper's §IV measures compulsory-miss reduction directly),
//! * [`CacheStats`] — the counter block every cache reports.
//!
//! # Examples
//!
//! ```
//! use ds_cache::{CacheArray, CacheGeometry, LineState, ReplacementPolicy};
//! use ds_mem::LineAddr;
//!
//! #[derive(Debug, Clone, Copy, PartialEq, Eq)]
//! struct Valid(bool);
//! impl LineState for Valid {
//!     fn is_valid(&self) -> bool {
//!         self.0
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let geom = CacheGeometry::new(64 * 1024, 2)?;
//! let mut l1 = CacheArray::new(geom, ReplacementPolicy::Lru);
//! let line = LineAddr::from_index(42);
//! assert!(l1.access(line).is_none());
//! l1.fill(line, Valid(true));
//! assert!(l1.access(line).is_some());
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod classify;
pub mod geometry;
pub mod mshr;
pub mod stats;

pub use array::{CacheArray, Evicted, LineState, ReplacementPolicy};
pub use classify::{MissClassifier, MissKind};
pub use geometry::{CacheGeometry, GeometryError};
pub use mshr::{MshrFile, MshrOutcome};
pub use stats::CacheStats;
