//! Per-cache statistics block.

use ds_sim::{Counter, RateStat};

use crate::MissKind;

/// The counters every modelled cache reports.
///
/// The GPU L2's instance of this block is the direct source of the
/// paper's Fig. 5 (miss rate) and the compulsory-miss discussion in
/// §IV.
///
/// # Examples
///
/// ```
/// use ds_cache::{CacheStats, MissKind};
///
/// let mut s = CacheStats::new();
/// s.record_hit();
/// s.record_miss(MissKind::Compulsory);
/// assert_eq!(s.accesses(), 2);
/// assert_eq!(s.miss_rate().as_f64(), 0.5);
/// assert_eq!(s.compulsory_misses.value(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: Counter,
    /// Demand misses of any kind.
    pub misses: Counter,
    /// Demand misses classified compulsory.
    pub compulsory_misses: Counter,
    /// Valid lines displaced by fills.
    pub evictions: Counter,
    /// Dirty evictions written back toward memory.
    pub writebacks: Counter,
    /// Lines installed by direct-store pushes (always zero under CCSM).
    pub pushed_fills: Counter,
    /// Demand hits on lines that were installed by a push and not yet
    /// re-fetched — the paper's "data resides in the GPU L2 cache on
    /// the first access" effect.
    pub push_hits: Counter,
}

impl CacheStats {
    /// Creates a zeroed block.
    pub fn new() -> Self {
        CacheStats {
            hits: Counter::new("hits"),
            misses: Counter::new("misses"),
            compulsory_misses: Counter::new("compulsory_misses"),
            evictions: Counter::new("evictions"),
            writebacks: Counter::new("writebacks"),
            pushed_fills: Counter::new("pushed_fills"),
            push_hits: Counter::new("push_hits"),
        }
    }

    /// Records a demand hit.
    pub fn record_hit(&mut self) {
        self.hits.incr();
    }

    /// Records a demand miss with its classification.
    pub fn record_miss(&mut self, kind: MissKind) {
        self.misses.incr();
        if kind == MissKind::Compulsory {
            self.compulsory_misses.incr();
        }
    }

    /// Total demand accesses (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits.value() + self.misses.value()
    }

    /// Demand miss rate.
    pub fn miss_rate(&self) -> RateStat {
        RateStat::new(self.misses.value(), self.accesses())
    }
}

impl Default for CacheStats {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accesses={} miss_rate={} compulsory={} evictions={} writebacks={} pushed_fills={} push_hits={}",
            self.accesses(),
            self.miss_rate(),
            self.compulsory_misses.value(),
            self.evictions.value(),
            self.writebacks.value(),
            self.pushed_fills.value(),
            self.push_hits.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_totals() {
        let mut s = CacheStats::new();
        for _ in 0..6 {
            s.record_hit();
        }
        s.record_miss(MissKind::Compulsory);
        s.record_miss(MissKind::NonCompulsory);
        assert_eq!(s.accesses(), 8);
        assert_eq!(s.miss_rate().as_f64(), 0.25);
        assert_eq!(s.compulsory_misses.value(), 1);
    }

    #[test]
    fn empty_stats_have_zero_rate() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate().as_f64(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = CacheStats::new();
        assert!(s.to_string().contains("accesses=0"));
    }

    #[test]
    fn display_includes_push_counters() {
        let mut s = CacheStats::new();
        s.pushed_fills.add(3);
        s.push_hits.add(2);
        let text = s.to_string();
        assert!(text.contains("pushed_fills=3"), "{text}");
        assert!(text.contains("push_hits=2"), "{text}");
    }
}
