//! Microbenches for the simulator's four host-time hot paths.
//!
//! `dsprof` attributes ~60% of host wall time to the event queue,
//! cache lookups, protocol transitions, and the direct-store push
//! path (see EXPERIMENTS.md, "Host-time profiling"). These benches
//! isolate each path at the unit level so a regression shows up here
//! before it moves the end-to-end numbers tracked by `dsprof trend`.
//!
//! Everything is deterministic: address streams come from a fixed
//! multiplicative mixer, never from a random source, so two runs of
//! `cargo bench` do identical work.

use criterion::{criterion_group, criterion_main, Criterion};

use ds_cache::{CacheArray, CacheGeometry, ReplacementPolicy};
use ds_coherence::{transition, HammerState, ProtocolEvent};
use ds_mem::{LineAddr, PhysAddr, LINE_BYTES};
use ds_sim::{Cycle, EventQueue};

/// Deterministic address stream: the i-th line of a strided, folded
/// walk over `span` lines. The multiplier is odd, so the walk visits
/// every line before repeating — a worst case for LRU stacks.
fn line(i: u64, span: u64) -> LineAddr {
    let idx = i.wrapping_mul(0x9e37_79b9) % span;
    LineAddr::containing(PhysAddr::new(idx * LINE_BYTES))
}

/// Event-queue hot path: the simulator pushes and pops one event per
/// message hop, so queue churn dominates `event_pop`/`event_push` in
/// the profile. Measures interleaved push/pop with out-of-order
/// timestamps and FIFO ties, the shape the NoC produces.
fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("hotpaths/event_queue_push_pop", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            // Keep ~64 events in flight, like a busy NoC tick.
            for i in 0..64u64 {
                q.push(Cycle::new((i.wrapping_mul(0x9e37) % 97) + 1), i);
            }
            let mut drained = 0u64;
            for i in 64..4096u64 {
                let (at, ev) = q.pop().expect("queue stays non-empty");
                drained = drained.wrapping_add(at.as_u64() ^ ev);
                q.push(
                    Cycle::new(at.as_u64() + (i.wrapping_mul(0x9e37) % 97) + 1),
                    i,
                );
            }
            while let Some((at, ev)) = q.pop() {
                drained = drained.wrapping_add(at.as_u64() ^ ev);
            }
            std::hint::black_box(drained)
        })
    });
}

/// Cache-lookup hot path: every memory reference probes a tag array,
/// so `cache_lookup` self-time tracks this loop. Mixes hits (folded
/// walk inside the array) and misses-with-fill (walk over 4x the
/// capacity) at the GPU-L2-slice geometry from Table I.
fn bench_cache_lookup(c: &mut Criterion) {
    let geom = CacheGeometry::new(512 * 1024, 16).expect("paper L2 slice geometry");
    let lines = geom.lines();
    let mut g = c.benchmark_group("hotpaths/cache_lookup");
    g.sample_size(20);
    g.bench_function("hit", |b| {
        let mut array: CacheArray<HammerState> = CacheArray::new(geom, ReplacementPolicy::Lru);
        for i in 0..lines {
            array.fill(line(i, lines), HammerState::S);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..4096u64 {
                hits += u64::from(array.access(line(i, lines)).is_some());
            }
            std::hint::black_box(hits)
        })
    });
    g.bench_function("miss_fill", |b| {
        let mut array: CacheArray<HammerState> = CacheArray::new(geom, ReplacementPolicy::Lru);
        let mut i = 0u64;
        b.iter(|| {
            let mut evictions = 0u64;
            for _ in 0..4096u64 {
                evictions += u64::from(array.fill(line(i, 4 * lines), HammerState::MM).is_some());
                i += 1;
            }
            std::hint::black_box(evictions)
        })
    });
    g.finish();
}

/// Protocol hot path: the pure transition function runs once per
/// coherence event; `protocol` self-time is dominated by the
/// surrounding bookkeeping, so the floor this measures is the part
/// that cannot be shed. Sweeps every (state, event) pair, errors
/// included (illegal pairs return `Err`, which the runtime treats as
/// a protocol bug — the cost of *deciding* legality is on the path).
fn bench_protocol(c: &mut Criterion) {
    c.bench_function("hotpaths/protocol_transition", |b| {
        b.iter(|| {
            let mut legal = 0u64;
            for _ in 0..128u64 {
                for state in HammerState::ALL {
                    for event in ProtocolEvent::ALL {
                        legal += u64::from(transition(state, event).is_ok());
                    }
                }
            }
            std::hint::black_box(legal)
        })
    });
}

/// Push-path hot path: the paper's remote store leaves the CPU line
/// in `I` and lands the pushed data in the GPU L2 (`I + PutXArrive ->
/// MM`). Models the per-push work — two transitions plus the L2
/// ingest fill with its eviction — without the surrounding timing.
fn bench_push_path(c: &mut Criterion) {
    let geom = CacheGeometry::new(512 * 1024, 16).expect("paper L2 slice geometry");
    let lines = geom.lines();
    c.bench_function("hotpaths/push_ingest", |b| {
        let mut gpu_l2: CacheArray<HammerState> = CacheArray::new(geom, ReplacementPolicy::Lru);
        let mut i = 0u64;
        b.iter(|| {
            let mut pushed = 0u64;
            for _ in 0..4096u64 {
                // CPU side: the store to GPU-homed memory never
                // allocates — MM (already-owned) and I (cold) both
                // resolve to I with a push action.
                let cpu = if i.is_multiple_of(2) {
                    HammerState::MM
                } else {
                    HammerState::I
                };
                let t = transition(cpu, ProtocolEvent::RemoteStore).expect("bold edge is legal");
                std::hint::black_box(t);
                // GPU L2 side: a present line absorbs the push in
                // place (PutXArrive is only legal from I); an absent
                // one takes the blue dashed I -> MM install, with a
                // full set evicting the LRU victim.
                let addr = line(i, 2 * lines);
                match gpu_l2.state_mut(addr) {
                    Some(state) => *state = HammerState::MM,
                    None => {
                        let install = transition(HammerState::I, ProtocolEvent::PutXArrive)
                            .expect("blue dashed edge is legal");
                        std::hint::black_box(&install);
                        pushed += u64::from(gpu_l2.fill(addr, HammerState::MM).is_some());
                    }
                }
                i += 1;
            }
            std::hint::black_box(pushed)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache_lookup,
    bench_protocol,
    bench_push_path
);
criterion_main!(benches);
