//! Criterion benches wrapping each experiment of the paper.
//!
//! One group per table/figure; each measurement runs the *actual*
//! experiment (translation + simulation), so `cargo bench` both
//! regenerates the numbers and tracks the simulator's own performance.
//! Representative benchmarks keep wall-clock time reasonable; the
//! `fig4_speedup` / `fig5_missrate` binaries run the full 22-benchmark
//! sweeps.

use criterion::{criterion_group, criterion_main, Criterion};

use ds_bench::run_single;
use ds_coherence::transition_table;
use ds_core::topology::Topology;
use ds_core::trace::trace_single_line;
use ds_core::{InputSize, Mode, SystemConfig};
use ds_workloads::catalog;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/config_build_and_render", |b| {
        b.iter(|| {
            let cfg = SystemConfig::paper_default();
            std::hint::black_box(cfg.to_string())
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/catalog_and_specs", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for bench in catalog::all() {
                for input in [InputSize::Small, InputSize::Big] {
                    total += bench
                        .spec(input)
                        .arrays
                        .iter()
                        .map(|a| a.bytes)
                        .sum::<u64>();
                }
            }
            std::hint::black_box(total)
        })
    });
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_dataflow");
    g.sample_size(10);
    for mode in [Mode::Ccsm, Mode::DirectStore] {
        g.bench_function(format!("{mode}"), |b| {
            b.iter(|| std::hint::black_box(trace_single_line(mode)))
        });
    }
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2/topology_build", |b| {
        let cfg = SystemConfig::paper_default();
        b.iter(|| std::hint::black_box(Topology::of(&cfg)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3/protocol_table", |b| {
        b.iter(|| std::hint::black_box(transition_table()))
    });
}

/// Fig. 4 representative points: the paper's headline winner (NN), a
/// flat benchmark (PT) and a shared-memory one (HT), under both modes.
fn bench_fig4(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let mut g = c.benchmark_group("fig4_speedup");
    g.sample_size(10);
    for code in ["NN", "PT", "HT"] {
        for mode in [Mode::Ccsm, Mode::DirectStore] {
            g.bench_function(format!("{code}/small/{mode}"), |b| {
                b.iter(|| {
                    std::hint::black_box(run_single(&cfg, code, InputSize::Small, mode).unwrap())
                })
            });
        }
    }
    g.finish();
}

/// Fig. 5 representative points: miss-rate measurement on VA (large
/// reduction) and MM (the capacity-cliff case), small inputs.
fn bench_fig5(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let mut g = c.benchmark_group("fig5_missrate");
    g.sample_size(10);
    for code in ["VA", "MM"] {
        for mode in [Mode::Ccsm, Mode::DirectStore] {
            g.bench_function(format!("{code}/small/{mode}"), |b| {
                b.iter(|| {
                    let r = run_single(&cfg, code, InputSize::Small, mode).unwrap();
                    std::hint::black_box(r.gpu_l2_miss_rate())
                })
            });
        }
    }
    g.finish();
}

/// Ablation: direct-network latency sweep on VA (paper §III.G claims
/// the dedicated network provides fast delivery).
fn bench_ablation_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_net_latency");
    g.sample_size(10);
    for lat in [5u64, 20, 80] {
        let mut cfg = SystemConfig::paper_default();
        cfg.direct_hop_latency = lat;
        g.bench_function(format!("direct_lat_{lat}"), |b| {
            b.iter(|| {
                let r = run_single(&cfg, "VA", InputSize::Small, Mode::DirectStore).unwrap();
                std::hint::black_box(r)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_ablation_net
);
criterion_main!(benches);
