//! # ds-bench — the figure and table regeneration harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the
//! full index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I (system configuration) |
//! | `table2` | Table II (benchmark inventory) |
//! | `fig1_dataflow` | Fig. 1 (CCSM vs DS data movement) |
//! | `fig2_topology` | Fig. 2 (control flow + topology) |
//! | `fig3_protocol` | Fig. 3 (modified Hammer transition table) |
//! | `fig4_speedup` | Fig. 4 (speedup, small/big inputs) |
//! | `fig5_missrate` | Fig. 5 (GPU L2 miss rates, small/big inputs) |
//! | `ablate_*` | design-choice ablations (DESIGN.md) |
//!
//! This library holds the shared sweep/formatting code; the binaries
//! are thin wrappers over the `ds-runner` orchestration subsystem
//! (parallel execution, memoization, `DS_RUNNER_JOBS`).

use ds_core::{Comparison, InputSize, Mode, PipelineError, RunReport, SystemConfig};
use ds_runner::Runner;
use ds_workloads::Benchmark;

/// Runs the full 22-benchmark comparison sweep at `input`.
///
/// # Errors
///
/// Returns the first benchmark's translation failure — a regression if
/// it ever happens, since every catalog entry is translation-tested.
pub fn run_sweep(cfg: &SystemConfig, input: InputSize) -> Result<Vec<Comparison>, PipelineError> {
    run_sweep_with(cfg, input, |_| true)
}

/// Runs the comparison sweep over the benchmarks `filter` selects.
///
/// Thin wrapper over [`ds_runner::Runner::sweep`] with progress lines
/// off; binaries that want cross-sweep memoization or progress build
/// their own `Runner`.
///
/// # Errors
///
/// Returns the first selected benchmark's failure.
pub fn run_sweep_with(
    cfg: &SystemConfig,
    input: InputSize,
    filter: impl Fn(&Benchmark) -> bool,
) -> Result<Vec<Comparison>, PipelineError> {
    Runner::new()
        .progress(false)
        .sweep(cfg, input, Mode::DirectStore, filter)
}

/// Runs one benchmark under one mode.
///
/// # Errors
///
/// Returns [`PipelineError::UnknownBenchmark`] for a code not in the
/// catalog, or the benchmark's translation failure.
pub fn run_single(
    cfg: &SystemConfig,
    code: &str,
    input: InputSize,
    mode: Mode,
) -> Result<RunReport, PipelineError> {
    Runner::new()
        .progress(false)
        .run_one(cfg, code, input, mode)
}

/// Unwraps a pipeline result in a binary's `main`, exiting with a
/// message instead of a panic backtrace.
pub fn exit_on_error<T>(result: Result<T, PipelineError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// Speedups within this of 1.0 count as "zero" for Fig. 4's geomean:
/// the paper's summary bar averages only benchmarks direct store
/// actually moves, and sub-half-percent deltas are scheduling noise on
/// these workload sizes, not signal.
pub const FLAT_SPEEDUP_EPSILON: f64 = 0.005;

/// The paper's Fig. 4 summary statistic: geometric mean over the
/// *non-zero* speedups (per [`FLAT_SPEEDUP_EPSILON`]), as a percentage.
pub fn geomean_nonzero_speedup_percent(comparisons: &[Comparison]) -> f64 {
    let gains: Vec<f64> = comparisons
        .iter()
        .map(|c| c.speedup())
        .filter(|&s| (s - 1.0).abs() > FLAT_SPEEDUP_EPSILON)
        .collect();
    (ds_sim::geomean(gains) - 1.0) * 100.0
}

/// Geometric mean of miss rates (the Fig. 5 right-most bars), in
/// percent, over benchmarks with a non-zero rate.
pub fn geomean_miss_rate_percent(rates: impl IntoIterator<Item = f64>) -> f64 {
    ds_sim::geomean(rates.into_iter().filter(|&r| r > 0.0)) * 100.0
}

/// Renders a horizontal ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

/// Parses a binary's `small` / `big` / `both` CLI argument.
pub fn parse_sizes(args: &[String]) -> Vec<InputSize> {
    match args.first().map(String::as_str) {
        Some("small") => vec![InputSize::Small],
        Some("big") => vec![InputSize::Big],
        _ => vec![InputSize::Small, InputSize::Big],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn parse_sizes_variants() {
        assert_eq!(parse_sizes(&["small".into()]), vec![InputSize::Small]);
        assert_eq!(parse_sizes(&["big".into()]), vec![InputSize::Big]);
        assert_eq!(parse_sizes(&[]).len(), 2);
    }

    #[test]
    fn single_run_smoke() {
        let cfg = SystemConfig::paper_default();
        let r = run_single(&cfg, "VA", InputSize::Small, Mode::Ccsm).unwrap();
        assert!(r.total_cycles.as_u64() > 0);
        assert!(r.gpu_l2.accesses() > 0);
    }

    #[test]
    fn single_run_unknown_code_is_an_error() {
        let cfg = SystemConfig::paper_default();
        let err = run_single(&cfg, "NOPE", InputSize::Small, Mode::Ccsm).unwrap_err();
        assert!(matches!(err, PipelineError::UnknownBenchmark(_)), "{err}");
    }

    #[test]
    fn geomean_speedup_ignores_flat_benchmarks() {
        // Built synthetically from two sweeps of one benchmark.
        let cfg = SystemConfig::paper_default();
        let cs = run_sweep_with(&cfg, InputSize::Small, |b| {
            ds_core::Scenario::code(b) == "VA"
        })
        .unwrap();
        assert_eq!(cs.len(), 1);
        let g = geomean_nonzero_speedup_percent(&cs);
        assert!(g > 0.0, "VA small must show a gain, got {g}");
    }
}
