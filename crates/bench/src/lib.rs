//! # ds-bench — the figure and table regeneration harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the
//! full index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I (system configuration) |
//! | `table2` | Table II (benchmark inventory) |
//! | `fig1_dataflow` | Fig. 1 (CCSM vs DS data movement) |
//! | `fig2_topology` | Fig. 2 (control flow + topology) |
//! | `fig3_protocol` | Fig. 3 (modified Hammer transition table) |
//! | `fig4_speedup` | Fig. 4 (speedup, small/big inputs) |
//! | `fig5_missrate` | Fig. 5 (GPU L2 miss rates, small/big inputs) |
//! | `ablate_*` | design-choice ablations (DESIGN.md) |
//!
//! This library holds the shared sweep/formatting code; the binaries
//! are thin wrappers.

use ds_core::{Comparison, InputSize, Mode, Pipeline, RunReport, SystemConfig};
use ds_workloads::{catalog, Benchmark};

/// Runs the full 22-benchmark comparison sweep at `input`.
///
/// # Panics
///
/// Panics if any benchmark fails translation — a regression, since
/// every catalog entry is translation-tested.
pub fn run_sweep(cfg: &SystemConfig, input: InputSize) -> Vec<Comparison> {
    run_sweep_with(cfg, input, |_| true)
}

/// Runs the comparison sweep over the benchmarks `filter` selects.
///
/// # Panics
///
/// Panics if a selected benchmark fails translation.
pub fn run_sweep_with(
    cfg: &SystemConfig,
    input: InputSize,
    filter: impl Fn(&Benchmark) -> bool,
) -> Vec<Comparison> {
    let pipeline = Pipeline::with_config(cfg.clone());
    catalog::all()
        .into_iter()
        .filter(|b| filter(b))
        .map(|b| {
            pipeline
                .run_comparison(&b, input)
                .unwrap_or_else(|e| panic!("{}: {e}", ds_core::Scenario::code(&b)))
        })
        .collect()
}

/// Runs one benchmark under one mode.
///
/// # Panics
///
/// Panics on translation failure or unknown code.
pub fn run_single(cfg: &SystemConfig, code: &str, input: InputSize, mode: Mode) -> RunReport {
    let b = catalog::by_code(code).unwrap_or_else(|| panic!("unknown benchmark {code}"));
    Pipeline::with_config(cfg.clone())
        .run_one(&b, input, mode)
        .unwrap_or_else(|e| panic!("{code}: {e}"))
}

/// The paper's Fig. 4 summary statistic: geometric mean over the
/// *non-zero* speedups, as a percentage.
pub fn geomean_nonzero_speedup_percent(comparisons: &[Comparison]) -> f64 {
    let gains: Vec<f64> = comparisons
        .iter()
        .map(|c| c.speedup())
        .filter(|&s| (s - 1.0).abs() > 0.005)
        .collect();
    (ds_sim::geomean(gains) - 1.0) * 100.0
}

/// Geometric mean of miss rates (the Fig. 5 right-most bars), in
/// percent, over benchmarks with a non-zero rate.
pub fn geomean_miss_rate_percent(rates: impl IntoIterator<Item = f64>) -> f64 {
    ds_sim::geomean(rates.into_iter().filter(|&r| r > 0.0)) * 100.0
}

/// Renders a horizontal ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

/// Parses a binary's `small` / `big` / `both` CLI argument.
pub fn parse_sizes(args: &[String]) -> Vec<InputSize> {
    match args.first().map(String::as_str) {
        Some("small") => vec![InputSize::Small],
        Some("big") => vec![InputSize::Big],
        _ => vec![InputSize::Small, InputSize::Big],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn parse_sizes_variants() {
        assert_eq!(parse_sizes(&["small".into()]), vec![InputSize::Small]);
        assert_eq!(parse_sizes(&["big".into()]), vec![InputSize::Big]);
        assert_eq!(parse_sizes(&[]).len(), 2);
    }

    #[test]
    fn single_run_smoke() {
        let cfg = SystemConfig::paper_default();
        let r = run_single(&cfg, "VA", InputSize::Small, Mode::Ccsm);
        assert!(r.total_cycles.as_u64() > 0);
        assert!(r.gpu_l2.accesses() > 0);
    }

    #[test]
    fn geomean_speedup_ignores_flat_benchmarks() {
        // Built synthetically from two sweeps of one benchmark.
        let cfg = SystemConfig::paper_default();
        let cs = run_sweep_with(&cfg, InputSize::Small, |b| {
            ds_core::Scenario::code(b) == "VA"
        });
        assert_eq!(cs.len(), 1);
        let g = geomean_nonzero_speedup_percent(&cs);
        assert!(g > 0.0, "VA small must show a gain, got {g}");
    }
}
