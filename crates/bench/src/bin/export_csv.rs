//! Exports the full evaluation as CSV for external plotting.
//!
//! Columns: benchmark, suite, shared memory, input size, mode, total
//! cycles, GPU L2 accesses/misses/miss-rate/compulsory, pushes,
//! coherence/direct/gpu network messages, DRAM reads/writes,
//! load-to-use latency percentiles (p50/p95/p99), then the
//! per-stage cycle breakdown: one `stage_<name>` column per
//! lifecycle stage (`sm_l1` … `direct_ack`, see `ds_probe::Stage`)
//! plus `stage_loads`/`stage_load_cycles` and
//! `stage_pushes`/`stage_push_cycles` aggregates.
//!
//! The whole run plan is batched through the `ds-runner` subsystem, so
//! rows are simulated in parallel (`DS_RUNNER_JOBS` sets the worker
//! count) while the output order stays fixed.
//!
//! Usage: `export_csv [small|big|both]` (default both); writes to
//! stdout.

use ds_bench::{exit_on_error, parse_sizes};
use ds_core::{Mode, Scenario, SystemConfig};
use ds_runner::{report_csv_row, Runner, Task, REPORT_CSV_HEADER};
use ds_workloads::catalog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = parse_sizes(&args);
    let cfg = SystemConfig::paper_default();

    let mut plan = Vec::new();
    for &input in &sizes {
        for b in catalog::all() {
            for mode in [Mode::Ccsm, Mode::DirectStore] {
                plan.push((b.clone(), Task::new(&cfg, b.code(), input, mode)));
            }
        }
    }
    let tasks: Vec<Task> = plan.iter().map(|(_, t)| t.clone()).collect();
    let mut runner = Runner::new();
    let reports = exit_on_error(runner.run_tasks(&tasks));

    println!("{REPORT_CSV_HEADER}");
    for ((b, task), report) in plan.iter().zip(&reports) {
        println!(
            "{}",
            report_csv_row(
                b.code(),
                &b.suite().to_string(),
                b.uses_shared_memory(),
                task.input,
                report
            )
        );
    }
}
