//! Exports the full evaluation as CSV for external plotting.
//!
//! Columns: benchmark, suite, shared memory, input size, mode, total
//! cycles, GPU L2 accesses/misses/miss-rate/compulsory, pushes,
//! coherence/direct/gpu network messages, DRAM reads/writes.
//!
//! Usage: `export_csv [small|big|both]` (default both); writes to
//! stdout.

use ds_core::{Mode, Pipeline, Scenario};
use ds_workloads::catalog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = ds_bench::parse_sizes(&args);
    let pipeline = Pipeline::paper_default();
    println!(
        "benchmark,suite,shared_memory,input,mode,total_cycles,gpu_l2_accesses,\
         gpu_l2_misses,gpu_l2_miss_rate,gpu_l2_compulsory,push_hits,direct_pushes,\
         coh_msgs,direct_msgs,gpu_msgs,dram_reads,dram_writes"
    );
    for input in sizes {
        for b in catalog::all() {
            for mode in [Mode::Ccsm, Mode::DirectStore] {
                let r = pipeline
                    .run_one(&b, input, mode)
                    .unwrap_or_else(|e| panic!("{} {input} {mode}: {e}", b.code()));
                println!(
                    "{},{},{},{},{},{},{},{},{:.6},{},{},{},{},{},{},{},{}",
                    b.code(),
                    b.suite(),
                    b.uses_shared_memory(),
                    input,
                    mode,
                    r.total_cycles.as_u64(),
                    r.gpu_l2.accesses(),
                    r.gpu_l2.misses.value(),
                    r.gpu_l2_miss_rate(),
                    r.gpu_l2_compulsory_misses(),
                    r.gpu_l2.push_hits.value(),
                    r.direct_pushes,
                    r.coh_net.total_msgs(),
                    r.direct_net.total_msgs(),
                    r.gpu_net.total_msgs(),
                    r.dram_reads,
                    r.dram_writes
                );
            }
        }
    }
}
