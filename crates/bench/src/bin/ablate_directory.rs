//! Ablation: Hammer broadcast vs a directory-filtered hub.
//!
//! The paper keeps Hammer's broadcast; its related work (heterogeneous
//! system coherence, Power et al. MICRO'13) replaces the broadcast with
//! a region directory to tame probe traffic. This study runs the same
//! benchmarks under both hub styles and shows (a) how much coherence
//! traffic the directory removes from the CCSM baseline and (b) that
//! direct store's advantage persists on top of either — the mechanisms
//! are complementary, as §II argues.
//!
//! The four runs per benchmark are batched through the `ds-runner`
//! subsystem and simulated in parallel.
//!
//! Usage: `ablate_directory [CODE...]` (default VA NN BP GA)

use ds_bench::exit_on_error;
use ds_core::{InputSize, Mode, RunReport, SystemConfig};
use ds_runner::{Runner, Task};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let codes: Vec<&str> = if args.is_empty() {
        vec!["VA", "NN", "BP", "GA"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("ABLATION — broadcast vs directory-filtered coherence (small inputs)");
    println!("====================================================================");
    println!(
        "{:<5} {:>13} {:>13} {:>12} {:>11} {:>11}",
        "name", "bcast msgs", "dir msgs", "msgs saved", "ds% bcast", "ds% dir"
    );

    let bcast = SystemConfig::paper_default();
    let mut dir = SystemConfig::paper_default();
    dir.directory_filter = true;
    let mut tasks = Vec::new();
    for code in &codes {
        for cfg in [&bcast, &dir] {
            tasks.push(Task::new(cfg, code, InputSize::Small, Mode::Ccsm));
            tasks.push(Task::new(cfg, code, InputSize::Small, Mode::DirectStore));
        }
    }
    let reports = exit_on_error(Runner::new().run_tasks(&tasks));

    for (code, quad) in codes.iter().zip(reports.chunks(4)) {
        let (b_ccsm, b_ds, d_ccsm, d_ds) = (&quad[0], &quad[1], &quad[2], &quad[3]);
        let speedup = |c: &RunReport, d: &RunReport| {
            (c.total_cycles.as_u64() as f64 / d.total_cycles.as_u64() as f64 - 1.0) * 100.0
        };
        println!(
            "{:<5} {:>13} {:>13} {:>11.1}% {:>10.2}% {:>10.2}%",
            code,
            b_ccsm.coh_net.total_msgs(),
            d_ccsm.coh_net.total_msgs(),
            (1.0 - d_ccsm.coh_net.total_msgs() as f64 / b_ccsm.coh_net.total_msgs() as f64) * 100.0,
            speedup(b_ccsm, b_ds),
            speedup(d_ccsm, d_ds),
        );
    }
}
