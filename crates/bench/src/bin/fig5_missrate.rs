//! Regenerates Fig. 5: GPU L2 miss rate under CCSM (red bars in the
//! paper) and direct store (blue bars), small (top) and big (bottom)
//! inputs, with geometric means as the right-most bars.
//!
//! Runs through the `ds-runner` subsystem: simulations execute in
//! parallel (`DS_RUNNER_JOBS` sets the worker count) and are memoized
//! across the two input sweeps.
//!
//! Usage: `fig5_missrate [small|big|both]`

use ds_bench::{bar, exit_on_error, geomean_miss_rate_percent, parse_sizes};
use ds_core::{Mode, SystemConfig};
use ds_runner::Runner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = SystemConfig::paper_default();
    let mut runner = Runner::new();
    for input in parse_sizes(&args) {
        println!();
        println!("FIG. 5 ({input}) — GPU L2 MISS RATE, CCSM vs DIRECT STORE");
        println!("==========================================================");
        let comparisons = exit_on_error(runner.sweep(&cfg, input, Mode::DirectStore, |_| true));
        let max = comparisons
            .iter()
            .map(|c| c.miss_rates().0.max(c.miss_rates().1) * 100.0)
            .fold(1.0f64, f64::max);
        println!(
            "{:<4} {:>8} {:>8}   {:<25} (ccsm █ / ds ▒)",
            "", "ccsm", "ds", ""
        );
        for c in &comparisons {
            let (mc, md) = c.miss_rates();
            let (pc, pd) = (mc * 100.0, md * 100.0);
            println!(
                "{:<4} {:>7.2}% {:>7.2}%   {:<25}",
                c.code,
                pc,
                pd,
                format!(
                    "{}|{}",
                    bar(pc, max, 20),
                    bar(pd, max, 20).replace('█', "▒")
                )
            );
        }
        let gc = geomean_miss_rate_percent(comparisons.iter().map(|c| c.miss_rates().0));
        let gd = geomean_miss_rate_percent(comparisons.iter().map(|c| c.miss_rates().1));
        println!(
            "{:<4} {:>7.2}% {:>7.2}%   (geomean of non-zero rates)",
            "GEO", gc, gd
        );
        println!(
            "paper reference geomeans: {}",
            match input {
                ds_core::InputSize::Small => "9.3% -> 7.3%",
                ds_core::InputSize::Big => "12.5% -> 11.1%",
            }
        );
        println!();
        println!("compulsory misses (ccsm -> ds):");
        for c in &comparisons {
            let (cc, cd) = c.compulsory_misses();
            println!("  {:<4} {:>8} -> {:>8}", c.code, cc, cd);
        }
    }
}
