//! Diagnostic tool: full run reports for one benchmark.
//!
//! Both modes are batched through the `ds-runner` subsystem and run in
//! parallel.
//!
//! Usage: `diag <CODE> [small|big]`

use ds_bench::exit_on_error;
use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::{Runner, Task};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = args.first().map(String::as_str).unwrap_or("VA");
    let input = match args.get(1).map(String::as_str) {
        Some("big") => InputSize::Big,
        _ => InputSize::Small,
    };
    let cfg = SystemConfig::paper_default();
    let modes = [Mode::Ccsm, Mode::DirectStore];
    let tasks: Vec<Task> = modes
        .iter()
        .map(|&mode| Task::new(&cfg, code, input, mode))
        .collect();
    let reports = exit_on_error(Runner::new().progress(false).run_tasks(&tasks));
    for r in &reports {
        println!("{r}");
        println!(
            "  gpu-l1: {}  push_hits={} pushed_fills={}",
            r.gpu_l1,
            r.gpu_l2.push_hits.value(),
            r.gpu_l2.pushed_fills.value()
        );
        println!(
            "  sb stalls={} warps={} kernels={}",
            r.store_buffer_stalls, r.warps_completed, r.kernels_run
        );
        println!(
            "  hub: txns={} conflicts={} probes={}  dram row hits={}  events={}",
            r.hub_transactions, r.hub_conflicts, r.hub_probes, r.dram_row_hits, r.events
        );
        println!(
            "  phases: produce ~{}  kernels ~{}  tail ~{}",
            r.first_kernel_start.as_u64(),
            r.last_kernel_end.as_u64() - r.first_kernel_start.as_u64(),
            r.total_cycles
                .as_u64()
                .saturating_sub(r.last_kernel_end.as_u64())
        );
        for line in r.latency.to_string().lines() {
            println!("  {line}");
        }
        println!();
    }
}
