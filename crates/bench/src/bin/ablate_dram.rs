//! Ablation: FCFS vs FR-FCFS memory scheduling on coherence-shaped
//! traffic.
//!
//! The full-system model services DRAM requests in arrival order.
//! This study quantifies how much a first-ready scheduler would
//! recover on the kind of row-alternating traffic the CCSM pull path
//! generates (demand reads interleaved with writebacks), bounding the
//! error that the FCFS simplification introduces.

use ds_bench::exit_on_error;
use ds_core::{InputSize, Mode, SystemConfig};
use ds_mem::{Dram, DramConfig, DramRequest, FrFcfsScheduler, LineAddr};
use ds_runner::{Runner, Task};
use ds_sim::Cycle;

/// Row-interleaved read/write mix modelled on a kernel-phase trace:
/// streaming reads of one region interleaved with writebacks to
/// another.
fn trace(cfg: &DramConfig, requests: u64) -> Vec<DramRequest> {
    let lines_per_row = cfg.row_bytes / 128;
    let banks = u64::from(cfg.total_banks());
    let region_b = banks * lines_per_row * 64;
    (0..requests)
        .map(|i| {
            let (line, is_write) = if i % 3 == 2 {
                (region_b + (i / 3), true) // writeback stream
            } else {
                (i - i / 3, false) // demand read stream
            };
            DramRequest {
                line: LineAddr::from_index(line),
                is_write,
                arrival: Cycle::new(i),
            }
        })
        .collect()
}

fn main() {
    let cfg = DramConfig::paper_default();
    println!("ABLATION — DRAM scheduling (FCFS device vs FR-FCFS window)");
    println!("===========================================================");
    println!(
        "{:>10} {:>12} {:>12} {:>9} {:>10} {:>9}",
        "requests", "fcfs done", "frfcfs done", "gain", "reorders", "forced"
    );
    for n in [64u64, 256, 1024, 4096] {
        let reqs = trace(&cfg, n);

        let mut fcfs = Dram::new(cfg.clone());
        let mut done_fcfs = Cycle::ZERO;
        for r in &reqs {
            done_fcfs = fcfs.access(r.arrival, r.line, r.is_write);
        }

        let mut fr = FrFcfsScheduler::new(cfg.clone(), 16);
        for r in &reqs {
            fr.enqueue(*r);
        }
        let done_fr = fr
            .drain(Cycle::ZERO)
            .iter()
            .map(|c| c.done)
            .max()
            .expect("non-empty trace");

        println!(
            "{:>10} {:>12} {:>12} {:>8.2}% {:>10} {:>9}",
            n,
            done_fcfs.as_u64(),
            done_fr.as_u64(),
            (done_fcfs.as_u64() as f64 / done_fr.as_u64() as f64 - 1.0) * 100.0,
            fr.reorders(),
            fr.forced()
        );
    }
    println!();
    println!("The gain bounds the speedup a smarter controller could add to the");
    println!("CCSM baseline; it applies to both modes' DRAM traffic, so the");
    println!("CCSM-vs-direct-store comparison is insensitive to it.");

    // Full-system cross-check through the runner: both modes of a
    // representative benchmark, showing the DRAM traffic the row-hit
    // argument above is about.
    println!();
    println!("full-system DRAM traffic (VA, small input):");
    let sys_cfg = SystemConfig::paper_default();
    let tasks = [
        Task::new(&sys_cfg, "VA", InputSize::Small, Mode::Ccsm),
        Task::new(&sys_cfg, "VA", InputSize::Small, Mode::DirectStore),
    ];
    let reports = exit_on_error(Runner::new().progress(false).run_tasks(&tasks));
    for (task, r) in tasks.iter().zip(&reports) {
        println!(
            "  {:>7}: reads {:>7}  writes {:>7}  row hits {:>7}",
            task.mode.to_string(),
            r.dram_reads,
            r.dram_writes,
            r.dram_row_hits
        );
    }
}
