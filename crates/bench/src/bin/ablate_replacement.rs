//! Ablation: direct store as a complement vs. a stand-alone
//! replacement for coherence (§III.H).
//!
//! The replacement design removes the broadcast protocol entirely;
//! the paper argues it is "a simpler design with better performance".
//!
//! All three modes of every catalog benchmark are batched through the
//! `ds-runner` subsystem and simulated in parallel.
//!
//! Usage: `ablate_replacement [small|big]`

use ds_bench::{exit_on_error, parse_sizes};
use ds_core::{Mode, Scenario, SystemConfig};
use ds_runner::{Runner, Task};
use ds_workloads::catalog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = SystemConfig::paper_default();
    let mut runner = Runner::new();
    for input in parse_sizes(&args[..args.len().min(1)]) {
        let codes: Vec<String> = catalog::all()
            .iter()
            .map(|b| b.code().to_string())
            .collect();
        let mut tasks = Vec::new();
        for code in &codes {
            for mode in [Mode::Ccsm, Mode::DirectStore, Mode::DirectStoreOnly] {
                tasks.push(Task::new(&cfg, code, input, mode));
            }
        }
        let reports = exit_on_error(runner.run_tasks(&tasks));

        println!();
        println!("ABLATION — DS-complement vs DS-replacement ({input} inputs)");
        println!("============================================================");
        println!(
            "{:<5} {:>10} {:>10} {:>10} {:>14}",
            "name", "ccsm", "ds", "ds-only", "coh msgs saved"
        );
        for (code, triple) in codes.iter().zip(reports.chunks(3)) {
            let (ccsm, ds, dso) = (&triple[0], &triple[1], &triple[2]);
            println!(
                "{:<5} {:>10} {:>10} {:>10} {:>14}",
                code,
                ccsm.total_cycles.as_u64(),
                ds.total_cycles.as_u64(),
                dso.total_cycles.as_u64(),
                ds.coh_net.total_msgs() - dso.coh_net.total_msgs()
            );
        }
    }
}
