//! Ablation: direct store as a complement vs. a stand-alone
//! replacement for coherence (§III.H).
//!
//! The replacement design removes the broadcast protocol entirely;
//! the paper argues it is "a simpler design with better performance".
//!
//! Usage: `ablate_replacement [small|big]`

use ds_bench::{parse_sizes, run_single};
use ds_core::{Mode, SystemConfig};
use ds_core::Scenario;
use ds_workloads::catalog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = SystemConfig::paper_default();
    for input in parse_sizes(&args[..args.len().min(1)]) {
        println!();
        println!("ABLATION — DS-complement vs DS-replacement ({input} inputs)");
        println!("============================================================");
        println!(
            "{:<5} {:>10} {:>10} {:>10} {:>14}",
            "name", "ccsm", "ds", "ds-only", "coh msgs saved"
        );
        for b in catalog::all() {
            let code = b.code().to_string();
            let ccsm = run_single(&cfg, &code, input, Mode::Ccsm);
            let ds = run_single(&cfg, &code, input, Mode::DirectStore);
            let dso = run_single(&cfg, &code, input, Mode::DirectStoreOnly);
            println!(
                "{:<5} {:>10} {:>10} {:>10} {:>14}",
                code,
                ccsm.total_cycles.as_u64(),
                ds.total_cycles.as_u64(),
                dso.total_cycles.as_u64(),
                ds.coh_net.total_msgs() - dso.coh_net.total_msgs()
            );
        }
    }
}
