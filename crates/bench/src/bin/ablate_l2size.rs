//! Ablation: GPU L2 capacity sweep (§IV.C's capacity argument).
//!
//! The paper attributes the big-input fall-off to the input exceeding
//! the GPU L2. Sweeping the slice size confirms the mechanism: the
//! speedup collapses once the produced footprint no longer fits.
//!
//! Usage: `ablate_l2size [CODE] [small|big]` (default MM small)

use ds_bench::run_single;
use ds_cache::CacheGeometry;
use ds_core::{InputSize, Mode, SystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = args.first().map(String::as_str).unwrap_or("MM");
    let input = match args.get(1).map(String::as_str) {
        Some("big") => InputSize::Big,
        _ => InputSize::Small,
    };
    println!("ABLATION — GPU L2 slice capacity ({code}, {input} input)");
    println!("========================================================");
    for slice_kb in [64u64, 128, 256, 512, 1024, 2048] {
        let mut cfg = SystemConfig::paper_default();
        cfg.gpu_l2_slice =
            CacheGeometry::new(slice_kb * 1024, 16).expect("power-of-two slice");
        let ccsm = run_single(&cfg, code, input, Mode::Ccsm).total_cycles.as_u64();
        let ds = run_single(&cfg, code, input, Mode::DirectStore)
            .total_cycles
            .as_u64();
        let speedup = (ccsm as f64 / ds as f64 - 1.0) * 100.0;
        println!(
            "  L2 total {:>5} KB: speedup {:>6.2}%",
            slice_kb * 4,
            speedup
        );
    }
}
