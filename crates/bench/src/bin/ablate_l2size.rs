//! Ablation: GPU L2 capacity sweep (§IV.C's capacity argument).
//!
//! The paper attributes the big-input fall-off to the input exceeding
//! the GPU L2. Sweeping the slice size confirms the mechanism: the
//! speedup collapses once the produced footprint no longer fits.
//!
//! All twelve runs are planned up front and batched through the
//! `ds-runner` subsystem, so the configurations simulate in parallel.
//!
//! Usage: `ablate_l2size [CODE] [small|big]` (default MM small)

use ds_bench::exit_on_error;
use ds_cache::CacheGeometry;
use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::{Runner, Task};

const SLICE_KB: [u64; 6] = [64, 128, 256, 512, 1024, 2048];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = args.first().map(String::as_str).unwrap_or("MM");
    let input = match args.get(1).map(String::as_str) {
        Some("big") => InputSize::Big,
        _ => InputSize::Small,
    };
    println!("ABLATION — GPU L2 slice capacity ({code}, {input} input)");
    println!("========================================================");

    let mut tasks = Vec::new();
    for slice_kb in SLICE_KB {
        let mut cfg = SystemConfig::paper_default();
        cfg.gpu_l2_slice = CacheGeometry::new(slice_kb * 1024, 16).expect("power-of-two slice");
        tasks.push(Task::new(&cfg, code, input, Mode::Ccsm));
        tasks.push(Task::new(&cfg, code, input, Mode::DirectStore));
    }
    let reports = exit_on_error(Runner::new().run_tasks(&tasks));

    for (slice_kb, pair) in SLICE_KB.iter().zip(reports.chunks(2)) {
        let ccsm = pair[0].total_cycles.as_u64();
        let ds = pair[1].total_cycles.as_u64();
        let speedup = (ccsm as f64 / ds as f64 - 1.0) * 100.0;
        println!(
            "  L2 total {:>5} KB: speedup {:>6.2}%",
            slice_kb * 4,
            speedup
        );
    }
}
