//! Ablation: direct store vs a next-line GPU L2 prefetcher.
//!
//! The paper remarks (§IV, omitted for space) that "direct store's
//! performance improvements there are even higher" than against
//! prefetching. This harness adds a next-line prefetcher to the
//! baseline and re-measures.
//!
//! Usage: `ablate_prefetch [CODE...]` (default NN VA MM BP)

use ds_bench::run_single;
use ds_core::{InputSize, Mode, SystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let codes: Vec<&str> = if args.is_empty() {
        vec!["NN", "VA", "MM", "BP"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("ABLATION — CCSM vs CCSM+prefetch vs direct store (small inputs)");
    println!("================================================================");
    println!(
        "{:<5} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "name", "ccsm", "ccsm+pf", "ds", "ds vs ccsm", "ds vs pf"
    );
    for code in codes {
        let base = SystemConfig::paper_default();
        let mut pf_cfg = SystemConfig::paper_default();
        pf_cfg.gpu_l2_prefetch = true;
        let ccsm = run_single(&base, code, InputSize::Small, Mode::Ccsm)
            .total_cycles
            .as_u64();
        let pf = run_single(&pf_cfg, code, InputSize::Small, Mode::Ccsm)
            .total_cycles
            .as_u64();
        let ds = run_single(&base, code, InputSize::Small, Mode::DirectStore)
            .total_cycles
            .as_u64();
        println!(
            "{:<5} {:>10} {:>12} {:>10} {:>11.2}% {:>11.2}%",
            code,
            ccsm,
            pf,
            ds,
            (ccsm as f64 / ds as f64 - 1.0) * 100.0,
            (pf as f64 / ds as f64 - 1.0) * 100.0
        );
    }
}
