//! Ablation: direct store vs a next-line GPU L2 prefetcher.
//!
//! The paper remarks (§IV, omitted for space) that "direct store's
//! performance improvements there are even higher" than against
//! prefetching. This harness adds a next-line prefetcher to the
//! baseline and re-measures.
//!
//! The three runs per benchmark are batched through the `ds-runner`
//! subsystem and simulated in parallel.
//!
//! Usage: `ablate_prefetch [CODE...]` (default NN VA MM BP)

use ds_bench::exit_on_error;
use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::{Runner, Task};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let codes: Vec<&str> = if args.is_empty() {
        vec!["NN", "VA", "MM", "BP"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("ABLATION — CCSM vs CCSM+prefetch vs direct store (small inputs)");
    println!("================================================================");
    println!(
        "{:<5} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "name", "ccsm", "ccsm+pf", "ds", "ds vs ccsm", "ds vs pf"
    );

    let base = SystemConfig::paper_default();
    let mut pf_cfg = SystemConfig::paper_default();
    pf_cfg.gpu_l2_prefetch = true;
    let mut tasks = Vec::new();
    for code in &codes {
        tasks.push(Task::new(&base, code, InputSize::Small, Mode::Ccsm));
        tasks.push(Task::new(&pf_cfg, code, InputSize::Small, Mode::Ccsm));
        tasks.push(Task::new(&base, code, InputSize::Small, Mode::DirectStore));
    }
    let reports = exit_on_error(Runner::new().run_tasks(&tasks));

    for (code, triple) in codes.iter().zip(reports.chunks(3)) {
        let ccsm = triple[0].total_cycles.as_u64();
        let pf = triple[1].total_cycles.as_u64();
        let ds = triple[2].total_cycles.as_u64();
        println!(
            "{:<5} {:>10} {:>12} {:>10} {:>11.2}% {:>11.2}%",
            code,
            ccsm,
            pf,
            ds,
            (ccsm as f64 / ds as f64 - 1.0) * 100.0,
            (pf as f64 / ds as f64 - 1.0) * 100.0
        );
    }
}
