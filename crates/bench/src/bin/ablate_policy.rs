//! Ablation: replacement policy of the coherent caches.
//!
//! The Ruby configuration behind the paper uses true LRU; hardware L2s
//! typically implement tree-PLRU. This sweep shows direct store's
//! advantage is robust to the replacement policy — pushes convert
//! first-touch misses regardless of how victims are picked.
//!
//! At small inputs nothing evicts and every policy ties — itself a
//! finding; the big-input rows are where policies differentiate.
//!
//! The full (input × code × policy × mode) grid is batched through the
//! `ds-runner` subsystem and simulated in parallel.
//!
//! Usage: `ablate_policy [CODE...]` (default MM VA SR)

use ds_bench::exit_on_error;
use ds_cache::ReplacementPolicy;
use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::{Runner, Task};

const POLICIES: [(&str, ReplacementPolicy); 4] = [
    ("lru", ReplacementPolicy::Lru),
    ("tree-plru", ReplacementPolicy::TreePlru),
    ("fifo", ReplacementPolicy::Fifo),
    ("random", ReplacementPolicy::Random { seed: 7 }),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let codes: Vec<&str> = if args.is_empty() {
        vec!["MM", "VA", "SR"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("ABLATION — coherent-cache replacement policy");
    println!("=============================================");

    let mut tasks = Vec::new();
    for input in [InputSize::Small, InputSize::Big] {
        for code in &codes {
            for (_, policy) in POLICIES {
                let mut cfg = SystemConfig::paper_default();
                cfg.replacement = policy;
                tasks.push(Task::new(&cfg, code, input, Mode::Ccsm));
                tasks.push(Task::new(&cfg, code, input, Mode::DirectStore));
            }
        }
    }
    let reports = exit_on_error(Runner::new().run_tasks(&tasks));
    let mut pairs = reports.chunks(2);

    for input in [InputSize::Small, InputSize::Big] {
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>12}",
            format!("{input}"),
            "lru",
            "tree-plru",
            "fifo",
            "random"
        );
        for code in &codes {
            let mut row = format!("{code:<10}");
            for _ in POLICIES {
                let pair = pairs.next().expect("one report pair per grid cell");
                let ccsm = pair[0].total_cycles.as_u64();
                let ds = pair[1].total_cycles.as_u64();
                row.push_str(&format!(
                    " {:>11.2}%",
                    (ccsm as f64 / ds as f64 - 1.0) * 100.0
                ));
            }
            println!("{row}");
        }
    }
}
