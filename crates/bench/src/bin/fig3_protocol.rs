//! Regenerates Fig. 3: the modified Hammer state-transition table.
//!
//! Rows marked `**` are the paper's bold direct-store additions; the
//! row marked `..>` is the blue dashed GPU-L2 `I -> MM` edge.

use ds_coherence::{transition_table, NextState, ProtocolEvent};

fn main() {
    println!("FIG. 3 — MODIFIED HAMMER PROTOCOL (MM, M, O, S, I)");
    println!("===================================================");
    println!(
        "{:<6} {:<13} {:<12} {:<30} annotation",
        "state", "event", "next", "actions"
    );
    for row in transition_table() {
        let Some(t) = row.outcome else {
            continue;
        };
        let next = match t.next {
            NextState::Imm(s) => s.to_string(),
            NextState::OnData { shared, exclusive } => format!("{shared}|{exclusive}"),
        };
        let actions = t
            .actions
            .iter()
            .map(|a| format!("{a:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        let mark = if row.event == ProtocolEvent::PutXArrive {
            "..> blue dashed (GPU L2 only)"
        } else if row.is_direct_store_addition {
            "**  bold (direct-store addition)"
        } else {
            ""
        };
        println!(
            "{:<6} {:<13} {:<12} {:<30} {}",
            row.state.to_string(),
            row.event.to_string(),
            next,
            actions,
            mark
        );
    }
}
