//! Ablation: store-buffer depth (§III.B's latency trade).
//!
//! Direct store trades increased CPU store latency for reduced GPU
//! load latency; the store buffer is what absorbs that extra latency.
//! Shrinking it shows where the trade starts to bite the producer.
//!
//! All depths are batched through the `ds-runner` subsystem and
//! simulated in parallel.
//!
//! Usage: `ablate_storebuf [CODE]` (default VA)

use ds_bench::exit_on_error;
use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::{Runner, Task};

const DEPTHS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn main() {
    let code_owned = std::env::args().nth(1).unwrap_or_else(|| "VA".to_string());
    let code = code_owned.as_str();
    println!("ABLATION — store-buffer entries ({code}, small input)");
    println!("======================================================");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>12}",
        "entries", "ccsm", "ds", "speedup", "sb stalls(ds)"
    );

    let mut tasks = Vec::new();
    for entries in DEPTHS {
        let mut cfg = SystemConfig::paper_default();
        cfg.store_buffer_entries = entries;
        cfg.store_drain_parallelism = cfg.store_drain_parallelism.min(entries);
        tasks.push(Task::new(&cfg, code, InputSize::Small, Mode::Ccsm));
        tasks.push(Task::new(&cfg, code, InputSize::Small, Mode::DirectStore));
    }
    let reports = exit_on_error(Runner::new().run_tasks(&tasks));

    for (entries, pair) in DEPTHS.iter().zip(reports.chunks(2)) {
        let (ccsm, ds) = (&pair[0], &pair[1]);
        println!(
            "{:<8} {:>12} {:>12} {:>9.2}% {:>12}",
            entries,
            ccsm.total_cycles.as_u64(),
            ds.total_cycles.as_u64(),
            (ccsm.total_cycles.as_u64() as f64 / ds.total_cycles.as_u64() as f64 - 1.0) * 100.0,
            ds.store_buffer_stalls
        );
    }
}
