//! `perf_baseline` — the machine-readable performance baseline.
//!
//! Runs the Table II catalog under both CCSM and direct store and
//! writes one JSON document capturing the numbers a regression would
//! move: per-benchmark cycle totals, speedups, miss rates, push
//! counts, load-latency percentiles and the full per-stage cycle
//! breakdown, plus the sweep's geomean speedup. `scripts/bench.sh`
//! wraps this binary and names the output `BENCH_<date>.json`
//! (schema documented in `results/README.md`).
//!
//! Usage: `perf_baseline [--smoke] [--input small|big|both]
//!                       [--out FILE] [--date STR]`
//!
//! `--smoke` restricts the sweep to VA/small — enough to validate the
//! schema in CI without paying for the full catalog.

use ds_core::{InputSize, Mode, RunReport, Scenario, SystemConfig};
use ds_runner::json::Json;
use ds_runner::{stages_to_json, Runner, Task};

const USAGE: &str = "usage: perf_baseline [options]

Writes the JSON performance baseline for the Table II catalog.

options:
  --smoke            run only VA/small (schema smoke test)
  --input small|big|both
                     input sizes to sweep (default: both)
  --out FILE         write to FILE instead of stdout
  --date STR         date string recorded in the document
                     (default: unset, written as \"unknown\")
  --help             show this help";

struct Options {
    smoke: bool,
    inputs: Vec<InputSize>,
    out: Option<String>,
    date: String,
}

fn usage_error(message: &str) -> ! {
    eprintln!("perf_baseline: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        smoke: false,
        inputs: vec![InputSize::Small, InputSize::Big],
        out: None,
        date: "unknown".to_string(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--input" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--input needs a value"));
                opts.inputs = match v.as_str() {
                    "small" => vec![InputSize::Small],
                    "big" => vec![InputSize::Big],
                    "both" => vec![InputSize::Small, InputSize::Big],
                    other => usage_error(&format!("unknown input size {other:?}")),
                };
            }
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out needs a value"));
                opts.out = Some(v.clone());
            }
            "--date" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--date needs a value"));
                opts.date = v.clone();
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if opts.smoke {
        opts.inputs = vec![InputSize::Small];
    }
    opts
}

/// The per-mode slice of one benchmark entry.
fn mode_to_json(r: &RunReport) -> Json {
    Json::Obj(vec![
        ("total_cycles".into(), Json::Int(r.total_cycles.as_u64())),
        ("gpu_l2_miss_rate".into(), Json::Float(r.gpu_l2_miss_rate())),
        ("gpu_l2_misses".into(), Json::Int(r.gpu_l2.misses.value())),
        ("direct_pushes".into(), Json::Int(r.direct_pushes)),
        (
            "load_to_use_p50".into(),
            Json::Int(r.latency.load_to_use.percentile(50.0).unwrap_or(0)),
        ),
        (
            "load_to_use_p99".into(),
            Json::Int(r.latency.load_to_use.percentile(99.0).unwrap_or(0)),
        ),
        ("stages".into(), stages_to_json(&r.stages)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);

    let cfg = SystemConfig::paper_default();
    let codes: Vec<String> = if opts.smoke {
        vec!["VA".to_string()]
    } else {
        ds_workloads::catalog::all()
            .iter()
            .map(|b| b.code().to_string())
            .collect()
    };

    let mut tasks = Vec::new();
    for &input in &opts.inputs {
        for code in &codes {
            for mode in [Mode::Ccsm, Mode::DirectStore] {
                tasks.push(Task::new(&cfg, code, input, mode));
            }
        }
    }

    let mut runner = Runner::new();
    let reports = runner.run_tasks(&tasks).unwrap_or_else(|e| {
        eprintln!("perf_baseline: {e}");
        std::process::exit(1);
    });

    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    for (pair, rep) in tasks.chunks(2).zip(reports.chunks(2)) {
        let (ccsm, ds) = (&rep[0], &rep[1]);
        let speedup = if ds.total_cycles.as_u64() == 0 {
            1.0
        } else {
            ccsm.total_cycles.as_u64() as f64 / ds.total_cycles.as_u64() as f64
        };
        speedups.push(speedup);
        entries.push(Json::Obj(vec![
            ("code".into(), Json::Str(pair[0].code.clone())),
            ("input".into(), Json::Str(pair[0].input.to_string())),
            ("speedup".into(), Json::Float(speedup)),
            ("ccsm".into(), mode_to_json(ccsm)),
            ("ds".into(), mode_to_json(ds)),
        ]));
    }

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("ds-bench-baseline".into())),
        ("version".into(), Json::Int(1)),
        ("date".into(), Json::Str(opts.date.clone())),
        (
            "config_fingerprint".into(),
            Json::Str(format!("{:016x}", Runner::fingerprint(&cfg))),
        ),
        (
            "inputs".into(),
            Json::Arr(
                opts.inputs
                    .iter()
                    .map(|i| Json::Str(i.to_string()))
                    .collect(),
            ),
        ),
        (
            "geomean_speedup".into(),
            Json::Float(ds_sim::geomean(speedups.iter().copied())),
        ),
        ("benchmarks".into(), Json::Arr(entries)),
    ]);

    let text = doc.pretty();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("perf_baseline: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "perf_baseline: {} benchmark entr{} -> {path}",
                speedups.len(),
                if speedups.len() == 1 { "y" } else { "ies" },
            );
        }
        None => println!("{text}"),
    }
}
