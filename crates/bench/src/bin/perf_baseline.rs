//! `perf_baseline` — the machine-readable performance baseline.
//!
//! Runs the Table II catalog under both CCSM and direct store and
//! writes one JSON document capturing the numbers a regression would
//! move: per-benchmark cycle totals, speedups, miss rates, push
//! counts, load-latency percentiles and the full per-stage cycle
//! breakdown, plus the sweep's geomean speedup. `scripts/bench.sh`
//! wraps this binary and names the output `BENCH_<date>.json`
//! (schema documented in `results/README.md`).
//!
//! Usage: `perf_baseline [--smoke] [--input small|big|both]
//!                       [--out FILE] [--date STR]`
//!        `perf_baseline --diff OLD.json NEW.json [--tolerance PCT]`
//!
//! `--smoke` restricts the sweep to VA/small — enough to validate the
//! schema in CI without paying for the full catalog. `--diff` runs
//! nothing: it compares two previously written baselines entry by
//! entry and exits non-zero when any mode's cycle count regressed
//! beyond the tolerance (default 5%).

use ds_core::{InputSize, Mode, RunReport, Scenario, SystemConfig};
use ds_runner::json::{self, Json};
use ds_runner::{host_to_json, stages_to_json, Runner, Task};

const USAGE: &str = "usage: perf_baseline [options]
       perf_baseline --diff OLD.json NEW.json [--tolerance PCT]

Writes the JSON performance baseline for the Table II catalog, or
compares two baseline files and fails on cycle regressions.

options:
  --smoke            run only VA/small (schema smoke test)
  --input small|big|both
                     input sizes to sweep (default: both)
  --out FILE         write to FILE instead of stdout
  --date STR         date string recorded in the document
                     (default: unset, written as \"unknown\")
  --diff OLD NEW     compare two BENCH_<date>.json files; exit 1 if
                     any benchmark's cycles grew by more than the
                     tolerance in either mode
  --tolerance PCT    regression threshold for --diff in percent
                     (default: 5)
  --help             show this help";

/// Exit code for `--diff` when a cycle regression beyond the
/// tolerance is found (2 stays reserved for usage errors).
const EXIT_REGRESSION: i32 = 1;

struct Options {
    smoke: bool,
    inputs: Vec<InputSize>,
    out: Option<String>,
    date: String,
    diff: Option<(String, String)>,
    tolerance: f64,
}

fn usage_error(message: &str) -> ! {
    eprintln!("perf_baseline: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        smoke: false,
        inputs: vec![InputSize::Small, InputSize::Big],
        out: None,
        date: "unknown".to_string(),
        diff: None,
        tolerance: 5.0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--input" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--input needs a value"));
                opts.inputs = match v.as_str() {
                    "small" => vec![InputSize::Small],
                    "big" => vec![InputSize::Big],
                    "both" => vec![InputSize::Small, InputSize::Big],
                    other => usage_error(&format!("unknown input size {other:?}")),
                };
            }
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out needs a value"));
                opts.out = Some(v.clone());
            }
            "--date" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--date needs a value"));
                opts.date = v.clone();
            }
            "--diff" => {
                let old = it
                    .next()
                    .unwrap_or_else(|| usage_error("--diff needs two files: OLD.json NEW.json"));
                let new = it
                    .next()
                    .unwrap_or_else(|| usage_error("--diff needs two files: OLD.json NEW.json"));
                opts.diff = Some((old.clone(), new.clone()));
            }
            "--tolerance" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--tolerance needs a value"));
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => opts.tolerance = t,
                    _ => usage_error(&format!(
                        "--tolerance needs a non-negative percentage, got {v:?}"
                    )),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if opts.smoke {
        opts.inputs = vec![InputSize::Small];
    }
    opts
}

/// The per-mode slice of one benchmark entry. Since schema version 2
/// the entry also carries the host-time self profile (`host`): the
/// wall-clock spent simulating this mode plus the per-phase
/// breakdown including the observability-tax buckets, so `dsprof
/// trend` can chart host-performance drift alongside simulated
/// cycles.
fn mode_to_json(r: &RunReport) -> Json {
    let mut fields = vec![
        ("total_cycles".into(), Json::Int(r.total_cycles.as_u64())),
        ("gpu_l2_miss_rate".into(), Json::Float(r.gpu_l2_miss_rate())),
        ("gpu_l2_misses".into(), Json::Int(r.gpu_l2.misses.value())),
        ("direct_pushes".into(), Json::Int(r.direct_pushes)),
        (
            "load_to_use_p50".into(),
            Json::Int(r.latency.load_to_use.percentile(50.0).unwrap_or(0)),
        ),
        (
            "load_to_use_p99".into(),
            Json::Int(r.latency.load_to_use.percentile(99.0).unwrap_or(0)),
        ),
        ("stages".into(), stages_to_json(&r.stages)),
    ];
    if let Some(host) = &r.host {
        fields.push(("host".into(), host_to_json(host)));
    }
    Json::Obj(fields)
}

/// One benchmark row pulled out of a baseline document.
#[derive(Debug, PartialEq)]
struct BaselineEntry {
    code: String,
    input: String,
    ccsm_cycles: u64,
    ds_cycles: u64,
}

/// The slice of a baseline document that `--diff` compares.
#[derive(Debug)]
struct Baseline {
    date: String,
    fingerprint: String,
    geomean: f64,
    entries: Vec<BaselineEntry>,
}

fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Json::as_str) != Some("ds-bench-baseline") {
        return Err("not a ds-bench-baseline document".into());
    }
    let mode_cycles = |entry: &Json, mode: &str| {
        entry
            .get(mode)
            .and_then(|m| m.get("total_cycles"))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("benchmark entry missing {mode}.total_cycles"))
    };
    let entries = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("missing benchmarks array")?
        .iter()
        .map(|entry| {
            Ok(BaselineEntry {
                code: entry
                    .get("code")
                    .and_then(Json::as_str)
                    .ok_or("benchmark entry missing code")?
                    .to_string(),
                input: entry
                    .get("input")
                    .and_then(Json::as_str)
                    .ok_or("benchmark entry missing input")?
                    .to_string(),
                ccsm_cycles: mode_cycles(entry, "ccsm")?,
                ds_cycles: mode_cycles(entry, "ds")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Baseline {
        date: doc
            .get("date")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        fingerprint: doc
            .get("config_fingerprint")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        geomean: doc
            .get("geomean_speedup")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        entries,
    })
}

fn load_baseline(path: &str) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_baseline(&text).map_err(|e| format!("{path}: {e}"))
}

/// Relative cycle change in percent; positive means `new` is slower.
fn delta_pct(old: u64, new: u64) -> f64 {
    if old == 0 {
        if new == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (new as f64 - old as f64) / old as f64
    }
}

/// Renders the diff table and returns the number of per-mode cycle
/// regressions beyond `tolerance` percent.
fn render_diff(old: &Baseline, new: &Baseline, tolerance: f64) -> (String, usize) {
    let mut out = String::new();
    out.push_str(&format!(
        "baseline diff: {} (fp {}) -> {} (fp {}), tolerance +{tolerance}%\n",
        old.date, old.fingerprint, new.date, new.fingerprint,
    ));
    if old.fingerprint != new.fingerprint {
        out.push_str("warning: config fingerprints differ; cycle deltas may reflect deliberate configuration changes\n");
    }
    out.push_str(&format!(
        "{:6} {:6} {:5} {:>14} {:>14} {:>9}\n",
        "bench", "input", "mode", "old cycles", "new cycles", "delta"
    ));
    let mut regressions = 0;
    let mut matched = 0;
    for o in &old.entries {
        let Some(n) = new
            .entries
            .iter()
            .find(|n| n.code == o.code && n.input == o.input)
        else {
            out.push_str(&format!(
                "{:6} {:6} dropped from new baseline\n",
                o.code, o.input
            ));
            continue;
        };
        matched += 1;
        for (mode, old_c, new_c) in [
            ("ccsm", o.ccsm_cycles, n.ccsm_cycles),
            ("ds", o.ds_cycles, n.ds_cycles),
        ] {
            let delta = delta_pct(old_c, new_c);
            let flag = if delta > tolerance {
                regressions += 1;
                "  REGRESSED"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:6} {:6} {:5} {:>14} {:>14} {:>+8.2}%{flag}\n",
                o.code, o.input, mode, old_c, new_c, delta,
            ));
        }
    }
    for n in &new.entries {
        if !old
            .entries
            .iter()
            .any(|o| o.code == n.code && o.input == n.input)
        {
            out.push_str(&format!(
                "{:6} {:6} new in new baseline (not compared)\n",
                n.code, n.input
            ));
        }
    }
    out.push_str(&format!(
        "geomean speedup: {:.3} -> {:.3}\n",
        old.geomean, new.geomean,
    ));
    if regressions > 0 {
        out.push_str(&format!(
            "FAIL: {regressions} cycle regression{} beyond +{tolerance}% across {matched} compared benchmark{}\n",
            if regressions == 1 { "" } else { "s" },
            if matched == 1 { "" } else { "s" },
        ));
    } else {
        out.push_str(&format!(
            "OK: no cycle regression beyond +{tolerance}% across {matched} compared benchmark{}\n",
            if matched == 1 { "" } else { "s" },
        ));
    }
    (out, regressions)
}

fn run_diff(old_path: &str, new_path: &str, tolerance: f64) -> ! {
    let load = |path: &str| {
        load_baseline(path).unwrap_or_else(|e| {
            eprintln!("perf_baseline: {e}");
            std::process::exit(1);
        })
    };
    let (old, new) = (load(old_path), load(new_path));
    let (report, regressions) = render_diff(&old, &new, tolerance);
    print!("{report}");
    std::process::exit(if regressions > 0 { EXIT_REGRESSION } else { 0 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);

    if let Some((old_path, new_path)) = &opts.diff {
        run_diff(old_path, new_path, opts.tolerance);
    }

    // Host-time self-profiling rides on every baseline (schema v2):
    // it costs a few percent of wall-clock and never perturbs
    // simulated cycles (`dsprof --check` proves the latter).
    ds_probe::prof::set_enabled(true);

    let cfg = SystemConfig::paper_default();
    let codes: Vec<String> = if opts.smoke {
        vec!["VA".to_string()]
    } else {
        ds_workloads::catalog::all()
            .iter()
            .map(|b| b.code().to_string())
            .collect()
    };

    let mut tasks = Vec::new();
    for &input in &opts.inputs {
        for code in &codes {
            for mode in [Mode::Ccsm, Mode::DirectStore] {
                tasks.push(Task::new(&cfg, code, input, mode));
            }
        }
    }

    let mut runner = Runner::new();
    let reports = runner.run_tasks(&tasks).unwrap_or_else(|e| {
        eprintln!("perf_baseline: {e}");
        std::process::exit(1);
    });

    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    for (pair, rep) in tasks.chunks(2).zip(reports.chunks(2)) {
        let (ccsm, ds) = (&rep[0], &rep[1]);
        let speedup = if ds.total_cycles.as_u64() == 0 {
            1.0
        } else {
            ccsm.total_cycles.as_u64() as f64 / ds.total_cycles.as_u64() as f64
        };
        speedups.push(speedup);
        entries.push(Json::Obj(vec![
            ("code".into(), Json::Str(pair[0].code.clone())),
            ("input".into(), Json::Str(pair[0].input.to_string())),
            ("speedup".into(), Json::Float(speedup)),
            ("ccsm".into(), mode_to_json(ccsm)),
            ("ds".into(), mode_to_json(ds)),
        ]));
    }

    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("ds-bench-baseline".into())),
        // Version 2 added the per-mode `host` profile. Readers stay
        // version-tolerant: `--diff` and `dsprof trend` accept v1
        // documents (they simply lack host columns).
        ("version".into(), Json::Int(2)),
        ("date".into(), Json::Str(opts.date.clone())),
        (
            "config_fingerprint".into(),
            Json::Str(format!("{:016x}", Runner::fingerprint(&cfg))),
        ),
        (
            "inputs".into(),
            Json::Arr(
                opts.inputs
                    .iter()
                    .map(|i| Json::Str(i.to_string()))
                    .collect(),
            ),
        ),
        (
            "geomean_speedup".into(),
            Json::Float(ds_sim::geomean(speedups.iter().copied())),
        ),
        ("benchmarks".into(), Json::Arr(entries)),
    ]);

    let text = doc.pretty();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("perf_baseline: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "perf_baseline: {} benchmark entr{} -> {path}",
                speedups.len(),
                if speedups.len() == 1 { "y" } else { "ies" },
            );
        }
        None => println!("{text}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(date: &str, fp: &str, rows: &[(&str, &str, u64, u64)]) -> String {
        let entries: Vec<Json> = rows
            .iter()
            .map(|(code, input, ccsm, ds)| {
                Json::Obj(vec![
                    ("code".into(), Json::Str(code.to_string())),
                    ("input".into(), Json::Str(input.to_string())),
                    (
                        "ccsm".into(),
                        Json::Obj(vec![("total_cycles".into(), Json::Int(*ccsm))]),
                    ),
                    (
                        "ds".into(),
                        Json::Obj(vec![("total_cycles".into(), Json::Int(*ds))]),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("ds-bench-baseline".into())),
            ("version".into(), Json::Int(1)),
            ("date".into(), Json::Str(date.into())),
            ("config_fingerprint".into(), Json::Str(fp.into())),
            ("geomean_speedup".into(), Json::Float(1.25)),
            ("benchmarks".into(), Json::Arr(entries)),
        ])
        .pretty()
    }

    #[test]
    fn parse_baseline_extracts_cycles() {
        let b = parse_baseline(&doc("d1", "f1", &[("VA", "small", 100, 80)])).unwrap();
        assert_eq!(b.date, "d1");
        assert_eq!(b.fingerprint, "f1");
        assert!((b.geomean - 1.25).abs() < 1e-12);
        assert_eq!(
            b.entries,
            vec![BaselineEntry {
                code: "VA".into(),
                input: "small".into(),
                ccsm_cycles: 100,
                ds_cycles: 80,
            }]
        );
    }

    #[test]
    fn parse_baseline_rejects_foreign_documents() {
        assert!(parse_baseline("{\"schema\": \"other\"}").is_err());
        assert!(parse_baseline("not json").is_err());
    }

    #[test]
    fn identical_baselines_have_no_regressions() {
        let rows = [("VA", "small", 100, 80), ("BS", "small", 200, 150)];
        let b = parse_baseline(&doc("d", "f", &rows)).unwrap();
        let (report, regressions) = render_diff(&b, &b, 5.0);
        assert_eq!(regressions, 0);
        assert!(report.contains("OK: no cycle regression"));
    }

    #[test]
    fn regression_beyond_tolerance_is_flagged() {
        let old = parse_baseline(&doc("d1", "f", &[("VA", "small", 100, 100)])).unwrap();
        // ds mode got 6% slower: past the 5% gate. ccsm is unchanged.
        let new = parse_baseline(&doc("d2", "f", &[("VA", "small", 100, 106)])).unwrap();
        let (report, regressions) = render_diff(&old, &new, 5.0);
        assert_eq!(regressions, 1);
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("FAIL: 1 cycle regression"));
    }

    #[test]
    fn regression_within_tolerance_passes() {
        let old = parse_baseline(&doc("d1", "f", &[("VA", "small", 100, 100)])).unwrap();
        let new = parse_baseline(&doc("d2", "f", &[("VA", "small", 104, 105)])).unwrap();
        // +4% and exactly +5%: both inside the (strictly greater) gate.
        let (_, regressions) = render_diff(&old, &new, 5.0);
        assert_eq!(regressions, 0);
    }

    #[test]
    fn speedups_count_as_improvements_not_regressions() {
        let old = parse_baseline(&doc("d1", "f", &[("VA", "small", 100, 100)])).unwrap();
        let new = parse_baseline(&doc("d2", "f", &[("VA", "small", 50, 40)])).unwrap();
        let (report, regressions) = render_diff(&old, &new, 5.0);
        assert_eq!(regressions, 0);
        assert!(report.contains("-50.00%"));
    }

    #[test]
    fn unmatched_entries_are_reported_not_compared() {
        let old = parse_baseline(&doc("d1", "f", &[("VA", "small", 100, 80)])).unwrap();
        let new = parse_baseline(&doc("d2", "f", &[("BS", "small", 900, 900)])).unwrap();
        let (report, regressions) = render_diff(&old, &new, 5.0);
        assert_eq!(regressions, 0);
        assert!(report.contains("VA     small  dropped from new baseline"));
        assert!(report.contains("BS     small  new in new baseline"));
    }

    #[test]
    fn growth_from_zero_cycles_is_a_regression() {
        let old = parse_baseline(&doc("d1", "f", &[("VA", "small", 0, 100)])).unwrap();
        let new = parse_baseline(&doc("d2", "f", &[("VA", "small", 10, 100)])).unwrap();
        let (_, regressions) = render_diff(&old, &new, 5.0);
        assert_eq!(regressions, 1);
    }
}
