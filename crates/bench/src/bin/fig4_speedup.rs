//! Regenerates Fig. 4: direct-store speedup over CCSM for small (top)
//! and big (bottom) inputs, with the geometric mean of non-zero
//! speedups as the right-most bar.
//!
//! Runs through the `ds-runner` subsystem: simulations execute in
//! parallel (`DS_RUNNER_JOBS` sets the worker count) and are memoized
//! across the two input sweeps.
//!
//! Usage: `fig4_speedup [small|big|both]`

use ds_bench::{
    bar, exit_on_error, geomean_nonzero_speedup_percent, parse_sizes, FLAT_SPEEDUP_EPSILON,
};
use ds_core::{Mode, SystemConfig};
use ds_runner::Runner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = SystemConfig::paper_default();
    let mut runner = Runner::new();
    for input in parse_sizes(&args) {
        println!();
        println!("FIG. 4 ({input}) — DIRECT-STORE SPEEDUP OVER CCSM");
        println!("==================================================");
        let comparisons = exit_on_error(runner.sweep(&cfg, input, Mode::DirectStore, |_| true));
        let max = comparisons
            .iter()
            .map(|c| c.speedup_percent())
            .fold(1.0f64, f64::max);
        for c in &comparisons {
            let pct = c.speedup_percent();
            println!("{:<4} {:>7.2}%  {}", c.code, pct, bar(pct, max, 40));
        }
        let geo = geomean_nonzero_speedup_percent(&comparisons);
        println!(
            "{:<4} {:>7.2}%  {}  (geomean of speedups beyond ±{:.1}%)",
            "GEO",
            geo,
            bar(geo, max, 40),
            FLAT_SPEEDUP_EPSILON * 100.0
        );
        println!(
            "paper reference geomean: {}",
            match input {
                ds_core::InputSize::Small => "7.8%",
                ds_core::InputSize::Big => "5.7%",
            }
        );
    }
}
