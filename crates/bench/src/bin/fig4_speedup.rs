//! Regenerates Fig. 4: direct-store speedup over CCSM for small (top)
//! and big (bottom) inputs, with the geometric mean of non-zero
//! speedups as the right-most bar.
//!
//! Usage: `fig4_speedup [small|big|both]`

use ds_bench::{bar, geomean_nonzero_speedup_percent, parse_sizes, run_sweep};
use ds_core::SystemConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = SystemConfig::paper_default();
    for input in parse_sizes(&args) {
        println!();
        println!("FIG. 4 ({input}) — DIRECT-STORE SPEEDUP OVER CCSM");
        println!("==================================================");
        let comparisons = run_sweep(&cfg, input);
        let max = comparisons
            .iter()
            .map(|c| c.speedup_percent())
            .fold(1.0f64, f64::max);
        for c in &comparisons {
            let pct = c.speedup_percent();
            println!("{:<4} {:>7.2}%  {}", c.code, pct, bar(pct, max, 40));
        }
        let geo = geomean_nonzero_speedup_percent(&comparisons);
        println!("{:<4} {:>7.2}%  {}  (geomean of non-zero speedups)", "GEO", geo, bar(geo, max, 40));
        println!(
            "paper reference geomean: {}",
            match input {
                ds_core::InputSize::Small => "7.8%",
                ds_core::InputSize::Big => "5.7%",
            }
        );
    }
}
