//! Regenerates Table I: the simulated system configuration.

use ds_core::SystemConfig;

fn main() {
    println!("TABLE I — SYSTEM CONFIGURATION");
    println!("==============================");
    println!("{}", SystemConfig::paper_default());
}
