//! Regenerates Fig. 1: data movement from a CPU store to the GPU's
//! consuming load, CCSM vs direct store, as measured message counts.

use ds_core::trace::{trace_lines, trace_single_line};
use ds_core::Mode;

fn main() {
    println!("FIG. 1 — DATA MOVEMENT: st x (CPU) ... ld x (GPU)");
    println!("==================================================");
    println!("single line:");
    for mode in [Mode::Ccsm, Mode::DirectStore, Mode::DirectStoreOnly] {
        println!("  {}", trace_single_line(mode));
    }
    println!();
    println!("64-line buffer (steady-state shape):");
    for mode in [Mode::Ccsm, Mode::DirectStore, Mode::DirectStoreOnly] {
        println!("  {}", trace_lines(mode, 64));
    }
    println!();
    println!("Reading: under CCSM the GPU's first access pulls the line through");
    println!("the coherence network (GETS, probes, data, unblock); under direct");
    println!("store the line was pushed over the dedicated network at store time");
    println!("and the GPU L2 hits locally.");
}
