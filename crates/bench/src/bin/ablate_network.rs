//! Ablation: dedicated direct-network latency sweep (§III.G).
//!
//! The paper adds "a fast network directly connecting the CPU and the
//! GPU L2 cache". How fast does it need to be? Sweeping its per-hop
//! latency shows the benefit is robust: pushes are pipelined behind
//! the producing computation, so even a slow direct network keeps most
//! of the gain.
//!
//! The whole latency grid is batched through the `ds-runner`
//! subsystem and simulated in parallel; the shared CCSM baselines are
//! deduplicated automatically.
//!
//! Usage: `ablate_network [CODE...]` (default NN VA)

use ds_bench::exit_on_error;
use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::{dedup_tasks, Runner, Task, TaskKey};
use std::collections::HashMap;

const LATENCIES: [u64; 6] = [5, 10, 20, 40, 80, 160];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let codes: Vec<&str> = if args.is_empty() {
        vec!["NN", "VA"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("ABLATION — direct-network per-hop latency (cycles)");
    println!("===================================================");

    let base = SystemConfig::paper_default();
    let mut tasks = Vec::new();
    for code in &codes {
        tasks.push(Task::new(&base, code, InputSize::Small, Mode::Ccsm));
        for lat in LATENCIES {
            let mut cfg = SystemConfig::paper_default();
            cfg.direct_hop_latency = lat;
            tasks.push(Task::new(&cfg, code, InputSize::Small, Mode::DirectStore));
        }
    }
    let tasks = dedup_tasks(&tasks);
    let reports = exit_on_error(Runner::new().run_tasks(&tasks));
    let by_key: HashMap<TaskKey, u64> = tasks
        .iter()
        .zip(&reports)
        .map(|(t, r)| (t.key(), r.total_cycles.as_u64()))
        .collect();

    for code in codes {
        let ccsm = by_key[&Task::new(&base, code, InputSize::Small, Mode::Ccsm).key()];
        println!("{code} (CCSM baseline: {ccsm} cycles)");
        for lat in LATENCIES {
            let mut cfg = SystemConfig::paper_default();
            cfg.direct_hop_latency = lat;
            let ds = by_key[&Task::new(&cfg, code, InputSize::Small, Mode::DirectStore).key()];
            let speedup = (ccsm as f64 / ds as f64 - 1.0) * 100.0;
            println!("  latency {lat:>4}: {ds:>10} cycles  speedup {speedup:>6.2}%");
        }
    }
}
