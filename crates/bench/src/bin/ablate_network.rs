//! Ablation: dedicated direct-network latency sweep (§III.G).
//!
//! The paper adds "a fast network directly connecting the CPU and the
//! GPU L2 cache". How fast does it need to be? Sweeping its per-hop
//! latency shows the benefit is robust: pushes are pipelined behind
//! the producing computation, so even a slow direct network keeps most
//! of the gain.
//!
//! Usage: `ablate_network [CODE...]` (default NN VA)

use ds_bench::run_single;
use ds_core::{InputSize, Mode, SystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let codes: Vec<&str> = if args.is_empty() {
        vec!["NN", "VA"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("ABLATION — direct-network per-hop latency (cycles)");
    println!("===================================================");
    for code in codes {
        let ccsm =
            run_single(&SystemConfig::paper_default(), code, InputSize::Small, Mode::Ccsm)
                .total_cycles
                .as_u64();
        println!("{code} (CCSM baseline: {ccsm} cycles)");
        for lat in [5u64, 10, 20, 40, 80, 160] {
            let mut cfg = SystemConfig::paper_default();
            cfg.direct_hop_latency = lat;
            let ds = run_single(&cfg, code, InputSize::Small, Mode::DirectStore)
                .total_cycles
                .as_u64();
            let speedup = (ccsm as f64 / ds as f64 - 1.0) * 100.0;
            println!("  latency {lat:>4}: {ds:>10} cycles  speedup {speedup:>6.2}%");
        }
    }
}
