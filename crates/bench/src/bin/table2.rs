//! Regenerates Table II: the benchmark inventory.

use ds_core::{InputSize, Scenario};
use ds_workloads::catalog;

fn main() {
    println!("TABLE II — BENCHMARKS");
    println!("=====================");
    println!(
        "{:<5} {:<26} {:<15} {:<15} {:<11} {:<6} {:>12} {:>12}",
        "Name",
        "Benchmark",
        "Small input",
        "Big input",
        "Suite",
        "Shared",
        "small bytes",
        "big bytes"
    );
    for b in catalog::all() {
        let small: u64 = b
            .spec(InputSize::Small)
            .arrays
            .iter()
            .map(|a| a.bytes)
            .sum();
        let big: u64 = b.spec(InputSize::Big).arrays.iter().map(|a| a.bytes).sum();
        println!(
            "{:<5} {:<26} {:<15} {:<15} {:<11} {:<6} {:>12} {:>12}",
            b.code(),
            b.name(),
            b.small_label(),
            b.big_label(),
            b.suite().to_string(),
            if b.uses_shared_memory() { "Yes" } else { "No" },
            small,
            big
        );
    }
}
