//! Regenerates Fig. 2 (right): the simulated topology with the added
//! direct-store network, plus (left) the TLB control flow.

use ds_core::topology::Topology;
use ds_core::SystemConfig;

fn main() {
    println!("FIG. 2 (left) — CONTROL FLOW OF A CPU STORE");
    println!("============================================");
    println!("  1. CPU issues `st x`");
    println!("  2. MMU consults the TLB for VA -> PA");
    println!("  3. TLB compares the high-order VA bits to the direct-window base");
    println!("  4a. ordinary VA  -> store drains through CPU L1/L2 (CCSM)");
    println!("  4b. direct VA    -> TLB signals the MMU; the L1 controller");
    println!("      forwards GETX + PUTX over the dedicated network to the");
    println!("      GPU L2 slice homing the line; the slice installs I -> MM");
    println!();
    println!("FIG. 2 (right) — SIMULATED TOPOLOGY");
    println!("====================================");
    print!("{}", Topology::of(&SystemConfig::paper_default()));
}
