//! Property-based tests: the translator on generated sources.

use proptest::prelude::*;

use ds_xlat::Translator;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.as_str(),
            "int" | "float" | "char" | "return" | "sizeof" | "main"
        )
    })
}

#[derive(Debug, Clone)]
struct GenVar {
    name: String,
    elems: u64,
    cuda: bool,
    passed_to_kernel: bool,
}

fn var_strategy() -> impl Strategy<Value = GenVar> {
    (ident(), 1u64..100_000, any::<bool>(), any::<bool>()).prop_map(
        |(name, elems, cuda, passed_to_kernel)| GenVar {
            name,
            elems,
            cuda,
            passed_to_kernel,
        },
    )
}

fn render(vars: &[GenVar]) -> String {
    let mut src = String::from("#define ELEMS 64\nint main() {\n");
    for v in vars {
        if v.cuda {
            src.push_str(&format!(
                "    float *{};\n    cudaMalloc(&{}, {} * sizeof(float));\n",
                v.name, v.name, v.elems
            ));
        } else {
            src.push_str(&format!(
                "    float *{} = (float*)malloc({} * sizeof(float));\n",
                v.name, v.elems
            ));
        }
    }
    let args: Vec<&str> = vars
        .iter()
        .filter(|v| v.passed_to_kernel)
        .map(|v| v.name.as_str())
        .collect();
    if !args.is_empty() {
        src.push_str(&format!("    work<<<ELEMS, 256>>>({});\n", args.join(", ")));
    }
    src.push_str("    return 0;\n}\n");
    src
}

proptest! {
    /// For arbitrary variable sets: exactly the kernel-passed
    /// variables are planned, sizes are exact, regions never overlap,
    /// and non-kernel allocations survive verbatim.
    #[test]
    fn translator_plans_exactly_kernel_args(mut vars in proptest::collection::vec(var_strategy(), 0..8)) {
        // Unique names.
        vars.sort_by(|a, b| a.name.cmp(&b.name));
        vars.dedup_by(|a, b| a.name == b.name);
        let src = render(&vars);
        let out = Translator::new().translate(&src).unwrap();

        let expected: Vec<&GenVar> = vars.iter().filter(|v| v.passed_to_kernel).collect();
        prop_assert_eq!(out.plan.len(), expected.len());
        for v in &expected {
            let p = out.plan.lookup(&v.name).expect("kernel arg planned");
            prop_assert_eq!(p.size, v.elems * 4);
        }
        // Non-overlap.
        let planned = out.plan.vars();
        for (i, a) in planned.iter().enumerate() {
            for b in &planned[i + 1..] {
                let a_end = a.base.offset(a.size);
                let b_end = b.base.offset(b.size);
                prop_assert!(a_end <= b.base || b_end <= a.base);
            }
        }
        // Untouched allocations survive verbatim.
        for v in vars.iter().filter(|v| !v.passed_to_kernel) {
            let alloc_text = if v.cuda {
                format!("cudaMalloc(&{}, {} * sizeof(float))", v.name, v.elems)
            } else {
                format!("(float*)malloc({} * sizeof(float))", v.elems)
            };
            prop_assert!(
                out.source.contains(&alloc_text),
                "{} should be untouched",
                v.name
            );
        }
        // Re-translating the output is a fixpoint.
        let again = Translator::new().translate(&out.source).unwrap();
        prop_assert_eq!(again.source, out.source.clone());
        prop_assert!(again.plan.is_empty());
    }
}
