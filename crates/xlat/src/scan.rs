//! Source scanning: `#define`s, kernel launches, allocations.

use std::collections::HashMap;

/// A kernel invocation found in the source:
/// `name<<<Dg, Db[, Ns[, S]]>>>(args...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelLaunch {
    /// Kernel function name.
    pub name: String,
    /// The launch-configuration text between `<<<` and `>>>`.
    pub config: String,
    /// Identifier arguments, in order (non-identifier arguments such
    /// as literals are kept too; the caller filters).
    pub args: Vec<String>,
    /// Byte offset of the launch in the source.
    pub offset: usize,
}

/// An allocation statement found in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// The variable being allocated.
    pub var: String,
    /// The size expression text.
    pub size_expr: String,
    /// Byte range of the whole allocation *call* (from the `malloc`/
    /// `cudaMalloc` keyword through its closing parenthesis), for
    /// rewriting.
    pub span: (usize, usize),
    /// Whether this was a `cudaMalloc` (vs. host `malloc`).
    pub is_cuda: bool,
}

/// Collects `#define NAME VALUE` lines where `VALUE` is an integer
/// literal or a previously defined constant expression.
pub fn scan_defines(src: &str) -> HashMap<String, u64> {
    let mut defs = HashMap::new();
    for line in src.lines() {
        let line = line.trim_start();
        let Some(rest) = line.strip_prefix("#define") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(name_end) = rest.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) else {
            continue;
        };
        let (name, value) = rest.split_at(name_end);
        if name.is_empty() {
            continue;
        }
        let value = value.trim();
        if value.is_empty() {
            continue;
        }
        if let Ok(v) = crate::eval_const_expr(value, &defs) {
            defs.insert(name.to_string(), v);
        }
    }
    defs
}

fn ident_before(src: &[u8], end: usize) -> Option<(usize, String)> {
    let mut i = end;
    while i > 0 && (src[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    let stop = i;
    while i > 0 {
        let c = src[i - 1] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            i -= 1;
        } else {
            break;
        }
    }
    if i == stop {
        return None;
    }
    Some((i, String::from_utf8_lossy(&src[i..stop]).into_owned()))
}

fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(s[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        parts.push(last.to_string());
    }
    parts
}

/// Finds every kernel launch in the source (the paper's pattern:
/// `kernel_name<<<Dg, Db, Ns, S>>>(x1, x2, ..., xn)`).
pub fn scan_kernel_launches(src: &str) -> Vec<KernelLaunch> {
    let bytes = src.as_bytes();
    let mut launches = Vec::new();
    let mut i = 0;
    while let Some(pos) = src[i..].find("<<<") {
        let open = i + pos;
        let Some((name_start, name)) = ident_before(bytes, open) else {
            i = open + 3;
            continue;
        };
        let Some(close_rel) = src[open + 3..].find(">>>") else {
            break;
        };
        let close = open + 3 + close_rel;
        let config = src[open + 3..close].trim().to_string();
        // Arguments: the parenthesized list right after `>>>`.
        let mut j = close + 3;
        while j < src.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let mut args = Vec::new();
        if j < src.len() && bytes[j] == b'(' {
            let mut depth = 0;
            let arg_start = j + 1;
            let mut k = j;
            while k < src.len() {
                match bytes[k] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            if k < src.len() {
                args = split_top_level_commas(&src[arg_start..k]);
            }
        }
        launches.push(KernelLaunch {
            name,
            config,
            args,
            offset: name_start,
        });
        i = close + 3;
    }
    launches
}

fn find_call_spans<'a>(src: &'a str, keyword: &str) -> Vec<(usize, usize, &'a str)> {
    // Returns (start_of_keyword, end_after_close_paren, inner_text).
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = src[i..].find(keyword) {
        let start = i + pos;
        // Reject identifier contexts like `my_malloc`.
        if start > 0 {
            let prev = bytes[start - 1] as char;
            if prev.is_ascii_alphanumeric() || prev == '_' {
                i = start + keyword.len();
                continue;
            }
        }
        let mut j = start + keyword.len();
        while j < src.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= src.len() || bytes[j] != b'(' {
            i = start + keyword.len();
            continue;
        }
        let inner_start = j + 1;
        let mut depth = 0;
        let mut k = j;
        while k < src.len() {
            match bytes[k] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if k >= src.len() {
            break;
        }
        out.push((start, k + 1, &src[inner_start..k]));
        i = k + 1;
    }
    out
}

/// Finds every `malloc`/`calloc`/`cudaMalloc` allocation, pairing each
/// with the variable it allocates.
///
/// `malloc`/`calloc` calls are paired with the assigned variable on
/// their left (`x = (float*)malloc(...)` or
/// `float *x = (float*)calloc(n, size)`); `cudaMalloc(&x, size)` names
/// its variable in the first argument. A `calloc(n, size)` contributes
/// the size expression `(n) * (size)`.
pub fn scan_allocations(src: &str) -> Vec<Allocation> {
    let bytes = src.as_bytes();
    let mut allocs = Vec::new();

    for (start, end, inner) in find_call_spans(src, "cudaMalloc") {
        let parts = split_top_level_commas(inner);
        if parts.len() != 2 {
            continue;
        }
        let var = parts[0]
            .trim_start_matches("(void**)")
            .trim_start_matches("(void **)")
            .trim()
            .trim_start_matches('&')
            .trim()
            .to_string();
        allocs.push(Allocation {
            var,
            size_expr: parts[1].clone(),
            span: (start, end),
            is_cuda: true,
        });
    }

    for (start, end, inner) in find_call_spans(src, "calloc") {
        let parts = split_top_level_commas(inner);
        if parts.len() != 2 {
            continue;
        }
        if let Some(var) = assigned_var(bytes, start) {
            allocs.push(Allocation {
                var,
                size_expr: format!("({}) * ({})", parts[0], parts[1]),
                span: (start, end),
                is_cuda: false,
            });
        }
    }

    for (start, end, inner) in find_call_spans(src, "malloc") {
        if let Some(var) = assigned_var(bytes, start) {
            allocs.push(Allocation {
                var,
                size_expr: inner.trim().to_string(),
                span: (start, end),
                is_cuda: false,
            });
        }
    }

    allocs.sort_by_key(|a| a.span.0);
    allocs
}

/// Walks left from a call keyword over an optional cast `(T*)` to an
/// `=` and returns the assigned identifier, if the call is the
/// right-hand side of an assignment or initializer.
fn assigned_var(bytes: &[u8], call_start: usize) -> Option<String> {
    let mut i = call_start;
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    if i > 0 && bytes[i - 1] == b')' {
        // Skip a cast.
        let mut depth = 0;
        while i > 0 {
            match bytes[i - 1] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                _ => {}
            }
            i -= 1;
        }
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
    }
    if i == 0 || bytes[i - 1] != b'=' {
        return None;
    }
    i -= 1; // over '='
    ident_before(bytes, i).map(|(_, var)| var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defines_chain() {
        let defs = scan_defines("#define N 256\n#define SIZE N*N\n#define BAD xyz\nint x;\n");
        assert_eq!(defs.get("N"), Some(&256));
        assert_eq!(defs.get("SIZE"), Some(&65536));
        assert!(!defs.contains_key("BAD"));
    }

    #[test]
    fn kernel_launch_with_four_config_args() {
        let src = "foo_kernel<<<grid, block, ns, stream>>>(a, b, n);";
        let l = scan_kernel_launches(src);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].name, "foo_kernel");
        assert_eq!(l[0].config, "grid, block, ns, stream");
        assert_eq!(l[0].args, vec!["a", "b", "n"]);
    }

    #[test]
    fn kernel_launch_with_expressions() {
        let src = "k<<<N/256, 256>>>(data, f(x), N*2);";
        let l = scan_kernel_launches(src);
        assert_eq!(l[0].args, vec!["data", "f(x)", "N*2"]);
    }

    #[test]
    fn multiple_launches() {
        let src = "a<<<1,1>>>(x);\nb<<<2,2>>>(y, z);";
        let l = scan_kernel_launches(src);
        assert_eq!(l.len(), 2);
        assert_eq!(l[1].name, "b");
        assert_eq!(l[1].args, vec!["y", "z"]);
    }

    #[test]
    fn malloc_with_cast_and_decl() {
        let src = "float *a = (float*)malloc(N * sizeof(float));";
        let allocs = scan_allocations(src);
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].var, "a");
        assert_eq!(allocs[0].size_expr, "N * sizeof(float)");
        assert!(!allocs[0].is_cuda);
        assert_eq!(
            &src[allocs[0].span.0..allocs[0].span.1],
            "malloc(N * sizeof(float))"
        );
    }

    #[test]
    fn malloc_without_cast() {
        let src = "buf = malloc(1024);";
        let allocs = scan_allocations(src);
        assert_eq!(allocs[0].var, "buf");
    }

    #[test]
    fn cuda_malloc_variants() {
        let src = "cudaMalloc(&d_a, bytes);\ncudaMalloc((void**)&d_b, N*4);";
        let allocs = scan_allocations(src);
        assert_eq!(allocs.len(), 2);
        assert_eq!(allocs[0].var, "d_a");
        assert!(allocs[0].is_cuda);
        assert_eq!(allocs[1].var, "d_b");
        assert_eq!(allocs[1].size_expr, "N*4");
    }

    #[test]
    fn calloc_combines_count_and_size() {
        let src = "float *a = (float*)calloc(N, sizeof(float));";
        let allocs = scan_allocations(src);
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].var, "a");
        assert_eq!(allocs[0].size_expr, "(N) * (sizeof(float))");
        assert!(!allocs[0].is_cuda);
        assert_eq!(
            &src[allocs[0].span.0..allocs[0].span.1],
            "calloc(N, sizeof(float))"
        );
    }

    #[test]
    fn my_malloc_is_not_malloc() {
        let src = "x = my_malloc(10);";
        assert!(scan_allocations(src).is_empty());
    }

    #[test]
    fn unassigned_malloc_is_skipped() {
        let src = "use(malloc(10));";
        assert!(scan_allocations(src).is_empty());
    }
}
