//! # ds-xlat — the automatic code translator
//!
//! Implements the paper's §III.C: a source-to-source translator that
//! makes existing programs use direct store *"with no effort for the
//! programmer"*. Given a CUDA-style source file, it
//!
//! 1. scans every kernel invocation
//!    `name<<<Dg, Db, Ns, S>>>(x1, ..., xn)` and records the argument
//!    variables (the data the GPU will access),
//! 2. finds each such variable's `malloc`/`cudaMalloc` declaration and
//!    statically evaluates its size (benchmarks allocate with
//!    compile-time-constant expressions, resolved against `#define`s),
//! 3. rewrites the allocation to
//!    `mmap((void*)ADDR, SIZE, PROT_READ|PROT_WRITE, MAP_FIXED|MAP_ANONYMOUS, -1, 0)`
//!    with `ADDR` in the reserved high-order window, incrementing the
//!    base per variable so no regions overlap,
//! 4. emits the modified source plus an [`AllocationPlan`] — the
//!    variable → (address, size) map that drives the simulator's
//!    memory layout.
//!
//! # Examples
//!
//! ```
//! use ds_xlat::Translator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//! #define N 1024
//! int main() {
//!     float *a = (float*)malloc(N * sizeof(float));
//!     float *b = (float*)malloc(N * sizeof(float));
//!     float *scratch = (float*)malloc(64);
//!     vecadd<<<N/256, 256>>>(a, b, N);
//!     return 0;
//! }
//! "#;
//! let out = Translator::new().translate(src)?;
//! // `a` and `b` are kernel arguments: rewritten and planned.
//! assert_eq!(out.plan.len(), 2);
//! assert!(out.source.contains("mmap((void*)0x7f0000000000"));
//! // `scratch` never reaches a kernel: left untouched.
//! assert!(out.source.contains("malloc(64)"));
//! # Ok(())
//! # }
//! ```

pub mod expr;
pub mod plan;
pub mod scan;
pub mod translate;

pub use expr::{eval_const_expr, ExprError};
pub use plan::{AllocationPlan, PlannedVar};
pub use scan::{scan_allocations, scan_defines, scan_kernel_launches, Allocation, KernelLaunch};
pub use translate::{TranslateError, Translation, Translator};
