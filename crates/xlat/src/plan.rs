//! The allocation plan the translator emits.

use std::fmt;

use ds_mem::{VirtAddr, PAGE_BYTES};

/// One GPU-homed variable's placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedVar {
    /// Variable name in the source.
    pub name: String,
    /// Assigned base virtual address (page-aligned, in the direct
    /// window).
    pub base: VirtAddr,
    /// Allocation size in bytes (as written; the reserved region is
    /// page-rounded).
    pub size: u64,
}

/// The variable → (address, size) map produced by translation.
///
/// Addresses are assigned by incrementing a cursor from the window
/// base, page-rounding each variable, so "there is no overlapping
/// starting virtual addresses for all variables" (§III.C).
///
/// # Examples
///
/// ```
/// use ds_xlat::Translator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "#define N 4096\nfloat* a = (float*)malloc(N);\nk<<<1,1>>>(a);";
/// let out = Translator::new().translate(src)?;
/// let a = out.plan.lookup("a").expect("a is planned");
/// assert_eq!(a.size, 4096);
/// assert_eq!(a.base.as_u64() % 4096, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocationPlan {
    vars: Vec<PlannedVar>,
}

impl AllocationPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a variable at the next free address after `cursor`,
    /// returning the region's end (the new cursor).
    pub(crate) fn place(&mut self, name: &str, cursor: VirtAddr, size: u64) -> VirtAddr {
        let rounded = size.max(1).div_ceil(PAGE_BYTES) * PAGE_BYTES;
        self.vars.push(PlannedVar {
            name: name.to_string(),
            base: cursor,
            size,
        });
        cursor.offset(rounded)
    }

    /// Looks a variable up by name.
    pub fn lookup(&self, name: &str) -> Option<&PlannedVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// The planned variables, in placement order.
    pub fn vars(&self) -> &[PlannedVar] {
        &self.vars
    }

    /// Number of planned variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variables were planned.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Total bytes reserved (page-rounded).
    pub fn reserved_bytes(&self) -> u64 {
        self.vars
            .iter()
            .map(|v| v.size.max(1).div_ceil(PAGE_BYTES) * PAGE_BYTES)
            .sum()
    }
}

impl fmt::Display for AllocationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "allocation plan ({} variables):", self.vars.len())?;
        for v in &self.vars {
            writeln!(f, "  {:<12} {:>10} bytes @ {}", v.name, v.size, v.base)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_never_overlaps() {
        let mut plan = AllocationPlan::new();
        let base = VirtAddr::new(0x7f00_0000_0000);
        let c1 = plan.place("a", base, 100);
        let c2 = plan.place("b", c1, PAGE_BYTES + 1);
        let _ = plan.place("c", c2, 1);
        let vs = plan.vars();
        assert_eq!(vs[0].base, base);
        assert_eq!(vs[1].base, base.offset(PAGE_BYTES));
        assert_eq!(vs[2].base, base.offset(3 * PAGE_BYTES));
        // No region intersects another.
        for (i, v) in vs.iter().enumerate() {
            for w in &vs[i + 1..] {
                assert!(v.base.offset(v.size) <= w.base || w.base.offset(w.size) <= v.base);
            }
        }
    }

    #[test]
    fn lookup_and_accessors() {
        let mut plan = AllocationPlan::new();
        plan.place("x", VirtAddr::new(0), 10);
        assert!(plan.lookup("x").is_some());
        assert!(plan.lookup("y").is_none());
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
        assert_eq!(plan.reserved_bytes(), PAGE_BYTES);
    }

    #[test]
    fn display_lists_vars() {
        let mut plan = AllocationPlan::new();
        plan.place("alpha", VirtAddr::new(0x1000), 64);
        let text = plan.to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("64"));
    }
}
