//! Constant-expression evaluation for allocation sizes.
//!
//! Benchmark sources allocate with compile-time-constant expressions
//! like `N * sizeof(float)` or `(ROWS+2) * COLS * 4`. This module
//! evaluates such expressions against the `#define` table the scanner
//! collects: integer literals, defined identifiers, `sizeof(type)`,
//! `+ - * /` and parentheses.

use std::collections::HashMap;
use std::fmt;

/// Errors from [`eval_const_expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// An identifier with no `#define` binding.
    UnknownIdent(String),
    /// A `sizeof` of a type the evaluator does not know.
    UnknownType(String),
    /// The expression is syntactically malformed.
    Malformed(String),
    /// Division by zero.
    DivideByZero,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownIdent(s) => write!(f, "unknown identifier `{s}`"),
            ExprError::UnknownType(s) => write!(f, "unknown type in sizeof: `{s}`"),
            ExprError::Malformed(s) => write!(f, "malformed expression near `{s}`"),
            ExprError::DivideByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ExprError {}

fn type_size(name: &str) -> Option<u64> {
    // Pointer-free scalar C types that appear in benchmark allocations.
    Some(match name.trim() {
        "char" | "unsigned char" | "signed char" | "int8_t" | "uint8_t" => 1,
        "short" | "unsigned short" | "int16_t" | "uint16_t" => 2,
        "int" | "unsigned" | "unsigned int" | "float" | "int32_t" | "uint32_t" => 4,
        "long" | "unsigned long" | "double" | "int64_t" | "uint64_t" | "size_t" => 8,
        _ => return None,
    })
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(u64),
    Ident(String),
    Sizeof(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, ExprError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                // Swallow integer suffixes (100u, 2UL, ...).
                while i < chars.len() && matches!(chars[i], 'u' | 'U' | 'l' | 'L') {
                    i += 1;
                }
                let text: String = chars[start..i]
                    .iter()
                    .filter(|c| c.is_ascii_digit())
                    .collect();
                let n = text
                    .parse()
                    .map_err(|_| ExprError::Malformed(text.clone()))?;
                toks.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word == "sizeof" {
                    // Expect ( type ).
                    while i < chars.len() && chars[i].is_whitespace() {
                        i += 1;
                    }
                    if i >= chars.len() || chars[i] != '(' {
                        return Err(ExprError::Malformed("sizeof".into()));
                    }
                    i += 1;
                    let tstart = i;
                    let mut depth = 1;
                    while i < chars.len() && depth > 0 {
                        match chars[i] {
                            '(' => depth += 1,
                            ')' => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                    if depth != 0 {
                        return Err(ExprError::Malformed("sizeof(".into()));
                    }
                    let ty: String = chars[tstart..i - 1].iter().collect();
                    toks.push(Tok::Sizeof(ty.trim().to_string()));
                } else {
                    toks.push(Tok::Ident(word));
                }
            }
            other => return Err(ExprError::Malformed(other.to_string())),
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    defines: &'a HashMap<String, u64>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn expr(&mut self) -> Result<u64, ExprError> {
        let mut acc = self.term()?;
        while let Some(op) = self.peek() {
            match op {
                Tok::Plus => {
                    self.pos += 1;
                    acc = acc.wrapping_add(self.term()?);
                }
                Tok::Minus => {
                    self.pos += 1;
                    acc = acc.wrapping_sub(self.term()?);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<u64, ExprError> {
        let mut acc = self.atom()?;
        while let Some(op) = self.peek() {
            match op {
                Tok::Star => {
                    self.pos += 1;
                    acc = acc.wrapping_mul(self.atom()?);
                }
                Tok::Slash => {
                    self.pos += 1;
                    let d = self.atom()?;
                    if d == 0 {
                        return Err(ExprError::DivideByZero);
                    }
                    acc /= d;
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn atom(&mut self) -> Result<u64, ExprError> {
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(n)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                self.defines
                    .get(&name)
                    .copied()
                    .ok_or(ExprError::UnknownIdent(name))
            }
            Some(Tok::Sizeof(ty)) => {
                self.pos += 1;
                type_size(&ty).ok_or(ExprError::UnknownType(ty))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let v = self.expr()?;
                match self.peek() {
                    Some(Tok::RParen) => {
                        self.pos += 1;
                        Ok(v)
                    }
                    _ => Err(ExprError::Malformed(")".into())),
                }
            }
            other => Err(ExprError::Malformed(format!("{other:?}"))),
        }
    }
}

/// Evaluates a C-like constant expression against a `#define` table.
///
/// # Errors
///
/// Returns [`ExprError`] on unknown identifiers/types, malformed
/// syntax or division by zero.
///
/// # Examples
///
/// ```
/// use ds_xlat::eval_const_expr;
/// use std::collections::HashMap;
///
/// let mut defs = HashMap::new();
/// defs.insert("N".to_string(), 100u64);
/// assert_eq!(eval_const_expr("N * sizeof(float)", &defs), Ok(400));
/// assert_eq!(eval_const_expr("(N+2)*(N+2)", &defs), Ok(10404));
/// ```
pub fn eval_const_expr(src: &str, defines: &HashMap<String, u64>) -> Result<u64, ExprError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        defines,
    };
    let v = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ExprError::Malformed(format!("{:?}", p.toks.get(p.pos))));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs(pairs: &[(&str, u64)]) -> HashMap<String, u64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn literals_and_arithmetic() {
        let d = defs(&[]);
        assert_eq!(eval_const_expr("42", &d), Ok(42));
        assert_eq!(eval_const_expr("2 + 3 * 4", &d), Ok(14));
        assert_eq!(eval_const_expr("(2 + 3) * 4", &d), Ok(20));
        assert_eq!(eval_const_expr("100 / 3", &d), Ok(33));
        assert_eq!(eval_const_expr("10 - 4", &d), Ok(6));
    }

    #[test]
    fn defines_resolve() {
        let d = defs(&[("ROWS", 512), ("COLS", 512)]);
        assert_eq!(eval_const_expr("ROWS * COLS * 4", &d), Ok(1 << 20));
    }

    #[test]
    fn sizeof_types() {
        let d = defs(&[("N", 8)]);
        assert_eq!(eval_const_expr("N * sizeof(double)", &d), Ok(64));
        assert_eq!(eval_const_expr("sizeof(char)", &d), Ok(1));
        assert_eq!(eval_const_expr("sizeof(unsigned int)", &d), Ok(4));
        assert!(matches!(
            eval_const_expr("sizeof(struct foo)", &d),
            Err(ExprError::UnknownType(_))
        ));
    }

    #[test]
    fn integer_suffixes() {
        let d = defs(&[]);
        assert_eq!(eval_const_expr("100u * 2UL", &d), Ok(200));
    }

    #[test]
    fn errors() {
        let d = defs(&[]);
        assert!(matches!(
            eval_const_expr("N", &d),
            Err(ExprError::UnknownIdent(_))
        ));
        assert_eq!(eval_const_expr("1/0", &d), Err(ExprError::DivideByZero));
        assert!(matches!(
            eval_const_expr("2 +", &d),
            Err(ExprError::Malformed(_))
        ));
        assert!(matches!(
            eval_const_expr("(2", &d),
            Err(ExprError::Malformed(_))
        ));
        assert!(matches!(
            eval_const_expr("2 3", &d),
            Err(ExprError::Malformed(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(ExprError::UnknownIdent("N".into())
            .to_string()
            .contains("`N`"));
        assert!(ExprError::DivideByZero.to_string().contains("zero"));
    }
}
