//! The translator proper: scan, plan, rewrite.

use std::collections::HashSet;
use std::fmt;

use ds_cpu::DirectWindow;

use crate::{
    eval_const_expr, scan_allocations, scan_defines, scan_kernel_launches, AllocationPlan,
    ExprError,
};

/// Errors from [`Translator::translate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// A kernel-argument variable's allocation size could not be
    /// evaluated statically.
    UnsizedAllocation {
        /// The variable.
        var: String,
        /// The offending size expression.
        expr: String,
        /// The evaluator's complaint.
        cause: ExprError,
    },
    /// A kernel argument is an identifier with no visible allocation.
    ///
    /// Scalars (e.g. a length `n`) are expected and skipped; this error
    /// only fires when `require_all_args` is set.
    MissingAllocation {
        /// The variable.
        var: String,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnsizedAllocation { var, expr, cause } => {
                write!(f, "cannot size allocation of `{var}` (`{expr}`): {cause}")
            }
            TranslateError::MissingAllocation { var } => {
                write!(f, "kernel argument `{var}` has no visible allocation")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// A successful translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    /// The rewritten source, ready to "be compiled in the standard
    /// way" (§III.C).
    pub source: String,
    /// The variable placements driving the simulator's memory layout.
    pub plan: AllocationPlan,
    /// Names of kernel-argument identifiers that had no allocation
    /// (scalars passed by value).
    pub scalar_args: Vec<String>,
}

/// The automatic code translator (paper §III.C).
///
/// See the [crate-level example](crate) for end-to-end use.
#[derive(Debug, Clone)]
pub struct Translator {
    window: DirectWindow,
    require_all_args: bool,
}

impl Translator {
    /// A translator targeting the default direct window.
    pub fn new() -> Self {
        Translator {
            window: DirectWindow::paper_default(),
            require_all_args: false,
        }
    }

    /// Targets a custom direct window.
    pub fn with_window(mut self, window: DirectWindow) -> Self {
        self.window = window;
        self
    }

    /// Makes unallocated kernel-argument identifiers an error instead
    /// of treating them as scalars.
    pub fn require_all_args(mut self) -> Self {
        self.require_all_args = true;
        self
    }

    /// Translates `src`, rewriting the allocation of every variable
    /// referenced by a kernel launch into an `mmap(MAP_FIXED)` in the
    /// direct window.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError`] when an allocation size cannot be
    /// evaluated or (with [`Translator::require_all_args`]) when a
    /// kernel argument has no allocation.
    pub fn translate(&self, src: &str) -> Result<Translation, TranslateError> {
        let defines = scan_defines(src);
        let launches = scan_kernel_launches(src);
        let allocations = scan_allocations(src);

        // The set of identifiers that flow into any kernel.
        let mut kernel_vars: HashSet<&str> = HashSet::new();
        for launch in &launches {
            for arg in &launch.args {
                let ident = arg.trim().trim_start_matches('&');
                if !ident.is_empty()
                    && ident.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && !ident.chars().next().is_some_and(|c| c.is_ascii_digit())
                {
                    kernel_vars.insert(ident);
                }
            }
        }

        let mut plan = AllocationPlan::new();
        let mut cursor = self.window.base();
        let mut rewrites: Vec<(usize, usize, String)> = Vec::new();
        let mut planned: HashSet<&str> = HashSet::new();

        for alloc in &allocations {
            if !kernel_vars.contains(alloc.var.as_str()) || planned.contains(alloc.var.as_str()) {
                continue;
            }
            let size = eval_const_expr(&alloc.size_expr, &defines).map_err(|cause| {
                TranslateError::UnsizedAllocation {
                    var: alloc.var.clone(),
                    expr: alloc.size_expr.clone(),
                    cause,
                }
            })?;
            let base = cursor;
            cursor = plan.place(&alloc.var, cursor, size);
            planned.insert(alloc.var.as_str());
            let replacement = format!(
                "mmap((void*){:#x}, {}, PROT_READ|PROT_WRITE, MAP_FIXED|MAP_ANONYMOUS|MAP_PRIVATE, -1, 0)",
                base.as_u64(),
                alloc.size_expr
            );
            rewrites.push((alloc.span.0, alloc.span.1, replacement));
        }

        if self.require_all_args {
            for v in &kernel_vars {
                if !planned.contains(v) {
                    return Err(TranslateError::MissingAllocation {
                        var: (*v).to_string(),
                    });
                }
            }
        }

        let mut scalar_args: Vec<String> = kernel_vars
            .iter()
            .filter(|v| !planned.contains(**v))
            .map(|v| (*v).to_string())
            .collect();
        scalar_args.sort();

        // Apply rewrites back to front so offsets stay valid.
        let mut source = src.to_string();
        rewrites.sort_by_key(|r| r.0);
        for (start, end, text) in rewrites.into_iter().rev() {
            source.replace_range(start..end, &text);
        }
        // Programs rewritten to mmap need the header, mirroring the
        // paper's toolchain (idempotent if already present).
        if source.contains("mmap((void*)") && !source.contains("<sys/mman.h>") {
            source.insert_str(0, "#include <sys/mman.h>\n");
        }

        Ok(Translation {
            source,
            plan,
            scalar_args,
        })
    }
}

impl Default for Translator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_mem::VirtAddr;

    const SRC: &str = r#"
#define N 1024
int main() {
    float *a = (float*)malloc(N * sizeof(float));
    float *b = (float*)malloc(N * sizeof(float));
    float *c;
    cudaMalloc(&c, N * sizeof(float));
    int *unrelated = (int*)malloc(4096);
    vecadd<<<N/256, 256>>>(a, b, c, N);
    return 0;
}
"#;

    #[test]
    fn plans_exactly_the_kernel_arguments() {
        let out = Translator::new().translate(SRC).unwrap();
        assert_eq!(out.plan.len(), 3);
        for name in ["a", "b", "c"] {
            let v = out.plan.lookup(name).unwrap();
            assert_eq!(v.size, 4096);
            assert!(v.base >= VirtAddr::new(0x7f00_0000_0000));
        }
        assert!(out.plan.lookup("unrelated").is_none());
        assert_eq!(out.scalar_args, vec!["N"]);
    }

    #[test]
    fn rewrites_are_textually_sound() {
        let out = Translator::new().translate(SRC).unwrap();
        assert!(out.source.starts_with("#include <sys/mman.h>"));
        assert_eq!(out.source.matches("mmap((void*)").count(), 3);
        assert!(out.source.contains("MAP_FIXED"));
        // Untouched allocation survives verbatim.
        assert!(out.source.contains("(int*)malloc(4096)"));
        // No rewritten malloc remains for the planned variables.
        assert!(!out.source.contains("malloc(N * sizeof(float))"));
        // Kernel launch is untouched.
        assert!(out.source.contains("vecadd<<<N/256, 256>>>(a, b, c, N);"));
    }

    #[test]
    fn addresses_increment_without_overlap() {
        let out = Translator::new().translate(SRC).unwrap();
        let a = out.plan.lookup("a").unwrap().base;
        let b = out.plan.lookup("b").unwrap().base;
        let c = out.plan.lookup("c").unwrap().base;
        assert!(a < b && b < c);
        assert_eq!(b.as_u64() - a.as_u64(), 4096);
    }

    #[test]
    fn unsized_allocation_errors() {
        let src = "float* a = (float*)malloc(n * 4);\nk<<<1,1>>>(a);";
        let err = Translator::new().translate(src).unwrap_err();
        assert!(matches!(err, TranslateError::UnsizedAllocation { .. }));
        assert!(err.to_string().contains("`a`"));
    }

    #[test]
    fn require_all_args_flags_scalars_with_pointers_missing() {
        let src = "k<<<1,1>>>(mystery);";
        let err = Translator::new()
            .require_all_args()
            .translate(src)
            .unwrap_err();
        assert!(matches!(err, TranslateError::MissingAllocation { .. }));
        // The default mode treats it as a scalar.
        let ok = Translator::new().translate(src).unwrap();
        assert_eq!(ok.scalar_args, vec!["mystery"]);
        assert!(ok.plan.is_empty());
    }

    #[test]
    fn calloc_translates_end_to_end() {
        let src = "#define N 256\nfloat* z = (float*)calloc(N, sizeof(float));\nk<<<1,1>>>(z);";
        let out = Translator::new().translate(src).unwrap();
        let z = out.plan.lookup("z").expect("calloc'd kernel arg planned");
        assert_eq!(z.size, 256 * 4);
        assert!(out.source.contains("mmap((void*)"));
        assert!(!out.source.contains("calloc"));
    }

    #[test]
    fn no_kernels_means_no_rewrites() {
        let src = "float* a = (float*)malloc(100);";
        let out = Translator::new().translate(src).unwrap();
        assert!(out.plan.is_empty());
        assert_eq!(out.source, src);
    }

    #[test]
    fn translation_is_idempotent_on_translated_source() {
        let once = Translator::new().translate(SRC).unwrap();
        let twice = Translator::new().translate(&once.source).unwrap();
        // mmap-allocated variables no longer match malloc patterns.
        assert!(twice.plan.is_empty());
        assert_eq!(twice.source, once.source);
    }
}
