//! End-to-end guarantees of the tracing layer:
//!
//! 1. a CCSM run never touches the direct-store machinery — the trace
//!    carries zero direct-network events and the caches record zero
//!    pushed fills (golden negative control for the mode split);
//! 2. the JSONL rendering of a traced run is byte-identical whether
//!    the simulation executes alone ("--jobs 1") or concurrently with
//!    other worker threads ("--jobs N") — tracing inherits the
//!    simulator's determinism;
//! 3. attaching a recording tracer does not perturb the simulation:
//!    the report equals the untraced (NullTracer) run bit for bit.

use ds_core::{InputSize, Mode, Pipeline, SystemConfig};
use ds_probe::{jsonl, BufferTracer, Component, NetId, TraceKind};
use ds_workloads::catalog;

fn traced_run(code: &str, mode: Mode) -> (ds_core::RunReport, BufferTracer) {
    let cfg = SystemConfig::paper_default();
    let bench = catalog::by_code(code).expect("test codes are in the catalog");
    Pipeline::with_config(cfg)
        .run_one_instrumented(&bench, InputSize::Small, mode, BufferTracer::new(), None)
        .expect("translates and runs")
}

#[test]
fn ccsm_run_emits_no_direct_network_activity_and_no_pushed_fills() {
    let (report, tracer) = traced_run("VA", Mode::Ccsm);
    let direct_events = tracer
        .events()
        .iter()
        .filter(|e| {
            matches!(e.component, Component::Net { net: NetId::Direct })
                || matches!(
                    e.kind,
                    TraceKind::PushFill | TraceKind::PushOverwrite | TraceKind::PushBypass
                )
        })
        .count();
    assert_eq!(direct_events, 0, "CCSM must not use the direct network");
    assert_eq!(report.gpu_l2.pushed_fills.value(), 0);
    assert_eq!(report.direct_pushes, 0);
    assert_eq!(report.direct_net.total_msgs(), 0);

    // Positive control: the same benchmark under direct store does
    // push, so the zero above is not a tracing blind spot.
    let (ds_report, ds_tracer) = traced_run("VA", Mode::DirectStore);
    assert!(ds_report.gpu_l2.pushed_fills.value() > 0);
    assert!(ds_tracer
        .events()
        .iter()
        .any(|e| matches!(e.component, Component::Net { net: NetId::Direct })));
    assert!(ds_tracer
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceKind::PushFill)));
}

#[test]
fn jsonl_trace_is_byte_identical_between_serial_and_parallel_execution() {
    // "--jobs 1": one traced run on the calling thread.
    let (_, tracer) = traced_run("MM", Mode::DirectStore);
    let serial = jsonl::render(tracer.events());

    // "--jobs N": the same traced run on 4 concurrent worker threads.
    let parallel: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let (_, tracer) = traced_run("MM", Mode::DirectStore);
                    jsonl::render(tracer.events())
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    for text in &parallel {
        assert_eq!(
            text, &serial,
            "trace bytes must not depend on worker-thread count"
        );
    }
}

#[test]
fn recording_tracer_does_not_perturb_the_simulation() {
    let cfg = SystemConfig::paper_default();
    let bench = catalog::by_code("NN").expect("NN is in the catalog");
    let pipeline = Pipeline::with_config(cfg);
    let baseline = pipeline
        .run_one(&bench, InputSize::Small, Mode::DirectStore)
        .expect("untraced run succeeds");
    let (traced, _) = pipeline
        .run_one_instrumented(
            &bench,
            InputSize::Small,
            Mode::DirectStore,
            BufferTracer::new(),
            None,
        )
        .expect("traced run succeeds");
    assert_eq!(
        format!("{baseline:?}"),
        format!("{traced:?}"),
        "tracing must be observation only"
    );
}

/// Chrome-trace sink guarantees, on real traced runs: the document is
/// well-formed JSON, every track's spans begin in non-decreasing
/// timestamp order (links and banks serialize FIFO, kernels are
/// sequential), and a CCSM trace renders no direct-network tracks.
mod chrome_sink {
    use super::*;
    use ds_probe::chrome;
    use ds_runner::json::{self, Json};

    fn chrome_doc(code: &str, mode: Mode) -> Json {
        let (_, tracer) = traced_run(code, mode);
        let text = chrome::render(tracer.events());
        json::parse(&text).expect("chrome trace must be valid JSON")
    }

    fn trace_events(doc: &Json) -> &[Json] {
        doc.get("traceEvents")
            .and_then(Json::as_arr)
            .expect("document has a traceEvents array")
    }

    #[test]
    fn direct_store_trace_is_valid_json_with_expected_tracks() {
        let doc = chrome_doc("VA", Mode::DirectStore);
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("time_unit"))
                .and_then(Json::as_str),
            Some("cycles"),
        );
        let events = trace_events(&doc);
        assert!(!events.is_empty());
        // Both phases appear: naming metadata and complete spans.
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("X")));
        // A direct-store run uses the direct network (pid 3).
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("pid").and_then(Json::as_u64) == Some(3)
        }));
    }

    #[test]
    fn span_timestamps_are_monotonic_per_track() {
        for mode in [Mode::Ccsm, Mode::DirectStore] {
            let doc = chrome_doc("MM", mode);
            let mut last_ts: std::collections::HashMap<(u64, u64), u64> =
                std::collections::HashMap::new();
            let mut spans = 0;
            for e in trace_events(&doc) {
                if e.get("ph").and_then(Json::as_str) != Some("X") {
                    continue;
                }
                let pid = e.get("pid").and_then(Json::as_u64).expect("span has pid");
                let tid = e.get("tid").and_then(Json::as_u64).expect("span has tid");
                let ts = e.get("ts").and_then(Json::as_u64).expect("span has ts");
                if let Some(prev) = last_ts.insert((pid, tid), ts) {
                    assert!(
                        ts >= prev,
                        "track ({pid},{tid}) went backwards: {prev} then {ts}"
                    );
                }
                spans += 1;
            }
            assert!(spans > 0, "mode {mode:?} rendered no spans");
        }
    }

    #[test]
    fn ccsm_trace_has_no_direct_network_tracks() {
        let doc = chrome_doc("VA", Mode::Ccsm);
        let direct_spans = trace_events(&doc)
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("pid").and_then(Json::as_u64) == Some(3)
            })
            .count();
        assert_eq!(direct_spans, 0, "CCSM must not serialize direct-net spans");
        // No direct-net link thread is even named: the only pid-3
        // metadata row is the process name itself.
        for e in trace_events(&doc) {
            if e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("pid").and_then(Json::as_u64) == Some(3)
            {
                assert_eq!(
                    e.get("name").and_then(Json::as_str),
                    Some("process_name"),
                    "CCSM trace must not name direct-net link threads"
                );
            }
        }
    }
}
