//! End-to-end guarantees of the tracing layer:
//!
//! 1. a CCSM run never touches the direct-store machinery — the trace
//!    carries zero direct-network events and the caches record zero
//!    pushed fills (golden negative control for the mode split);
//! 2. the JSONL rendering of a traced run is byte-identical whether
//!    the simulation executes alone ("--jobs 1") or concurrently with
//!    other worker threads ("--jobs N") — tracing inherits the
//!    simulator's determinism;
//! 3. attaching a recording tracer does not perturb the simulation:
//!    the report equals the untraced (NullTracer) run bit for bit.

use ds_core::{InputSize, Mode, Pipeline, SystemConfig};
use ds_probe::{jsonl, BufferTracer, Component, NetId, TraceKind};
use ds_workloads::catalog;

fn traced_run(code: &str, mode: Mode) -> (ds_core::RunReport, BufferTracer) {
    let cfg = SystemConfig::paper_default();
    let bench = catalog::by_code(code).expect("test codes are in the catalog");
    Pipeline::with_config(cfg)
        .run_one_instrumented(&bench, InputSize::Small, mode, BufferTracer::new(), None)
        .expect("translates and runs")
}

#[test]
fn ccsm_run_emits_no_direct_network_activity_and_no_pushed_fills() {
    let (report, tracer) = traced_run("VA", Mode::Ccsm);
    let direct_events = tracer
        .events()
        .iter()
        .filter(|e| {
            matches!(e.component, Component::Net { net: NetId::Direct })
                || matches!(
                    e.kind,
                    TraceKind::PushFill | TraceKind::PushOverwrite | TraceKind::PushBypass
                )
        })
        .count();
    assert_eq!(direct_events, 0, "CCSM must not use the direct network");
    assert_eq!(report.gpu_l2.pushed_fills.value(), 0);
    assert_eq!(report.direct_pushes, 0);
    assert_eq!(report.direct_net.total_msgs(), 0);

    // Positive control: the same benchmark under direct store does
    // push, so the zero above is not a tracing blind spot.
    let (ds_report, ds_tracer) = traced_run("VA", Mode::DirectStore);
    assert!(ds_report.gpu_l2.pushed_fills.value() > 0);
    assert!(ds_tracer
        .events()
        .iter()
        .any(|e| matches!(e.component, Component::Net { net: NetId::Direct })));
    assert!(ds_tracer
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceKind::PushFill)));
}

#[test]
fn jsonl_trace_is_byte_identical_between_serial_and_parallel_execution() {
    // "--jobs 1": one traced run on the calling thread.
    let (_, tracer) = traced_run("MM", Mode::DirectStore);
    let serial = jsonl::render(tracer.events());

    // "--jobs N": the same traced run on 4 concurrent worker threads.
    let parallel: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let (_, tracer) = traced_run("MM", Mode::DirectStore);
                    jsonl::render(tracer.events())
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    for text in &parallel {
        assert_eq!(
            text, &serial,
            "trace bytes must not depend on worker-thread count"
        );
    }
}

#[test]
fn recording_tracer_does_not_perturb_the_simulation() {
    let cfg = SystemConfig::paper_default();
    let bench = catalog::by_code("NN").expect("NN is in the catalog");
    let pipeline = Pipeline::with_config(cfg);
    let baseline = pipeline
        .run_one(&bench, InputSize::Small, Mode::DirectStore)
        .expect("untraced run succeeds");
    let (traced, _) = pipeline
        .run_one_instrumented(
            &bench,
            InputSize::Small,
            Mode::DirectStore,
            BufferTracer::new(),
            None,
        )
        .expect("traced run succeeds");
    assert_eq!(
        format!("{baseline:?}"),
        format!("{traced:?}"),
        "tracing must be observation only"
    );
}
