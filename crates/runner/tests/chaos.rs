//! Harness-level ds-chaos guarantees, asserted end to end on catalog
//! benchmarks:
//!
//! 1. a permanently-stalled DRAM bank aborts with a deadlock
//!    diagnostic instead of hanging (guarded by a test-side timeout);
//! 2. faulted runs are deterministic: the same (seed, plan) twice
//!    produces byte-identical serialized reports, and the worker count
//!    does not matter;
//! 3. the executor survives broken runs and reports them as outcomes.

use std::sync::mpsc;
use std::time::Duration;

use ds_core::{FaultPlan, InputSize, Mode, SystemConfig};
use ds_runner::{report_to_json, Runner, Task, TaskOutcome};

fn delay_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    plan.direct_net.delay = 8_192;
    plan.direct_net.delay_cycles = 400;
    plan.direct_net.dup = 1_024;
    plan
}

#[test]
fn stalled_dram_bank_aborts_with_a_deadlock_diagnostic() {
    let cfg = SystemConfig::paper_default();
    let banks = cfg.dram.total_banks();
    let plan = FaultPlan {
        seed: 1,
        stuck_banks: (0..banks as u16).collect(),
        ..FaultPlan::default()
    };
    let task = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm).with_faults(plan);

    // The point under test is "aborts instead of hangs", so the test
    // itself must not hang if the watchdog is broken: run on a helper
    // thread and give it a generous wall-clock bound.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut runner = Runner::new().jobs(1).progress(false);
        let _ = tx.send(runner.run_tasks_outcomes(&[task]));
    });
    let outcomes = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("watchdog must abort the run well within the bound");
    match &outcomes[..] {
        [TaskOutcome::Failed(msg)] => {
            assert!(msg.contains("deadlock"), "{msg}");
            assert!(
                msg.contains("mshr") || msg.contains("in flight"),
                "diagnostic must dump outstanding transactions: {msg}"
            );
        }
        other => panic!("expected a Failed outcome with a diagnostic, got {other:?}"),
    }
}

#[test]
fn faulted_runs_serialize_byte_identically_across_reruns_and_worker_counts() {
    let cfg = SystemConfig::paper_default();
    let tasks: Vec<Task> = ["VA", "MM"]
        .iter()
        .map(|code| {
            Task::new(&cfg, code, InputSize::Small, Mode::DirectStore).with_faults(delay_plan(42))
        })
        .collect();

    let render = |outcomes: &[TaskOutcome]| -> Vec<String> {
        outcomes
            .iter()
            .map(|o| {
                let r = o.report().expect("delay faults are survivable");
                report_to_json(r).pretty()
            })
            .collect()
    };

    // Two fresh single-worker runners: byte-identical JSON.
    let mut first = Runner::new().jobs(1).progress(false);
    let first_outcomes = first.run_tasks_outcomes(&tasks);
    let a = render(&first_outcomes);
    let mut second = Runner::new().jobs(1).progress(false);
    let b = render(&second.run_tasks_outcomes(&tasks));
    assert_eq!(a, b, "same (seed, plan) must serialize byte-identically");

    // A 4-worker runner: scheduling must not leak into results.
    let mut wide = Runner::new().jobs(4).progress(false);
    let c = render(&wide.run_tasks_outcomes(&tasks));
    assert_eq!(a, c, "worker count must not affect faulted results");

    // Sanity: the faults really were live in the runs being compared.
    let r = first_outcomes[0].report().unwrap();
    assert!(
        r.faults_injected > 0 && r.pushes_retried > 0,
        "retries {} faults {}",
        r.pushes_retried,
        r.faults_injected
    );
}

#[test]
fn fault_plans_do_not_pollute_the_fault_free_memo() {
    let cfg = SystemConfig::paper_default();
    let plain = Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore);
    let faulted = plain.clone().with_faults(delay_plan(5));

    let mut runner = Runner::new().jobs(2).progress(false);
    let outcomes = runner.run_tasks_outcomes(&[plain.clone(), faulted]);
    assert_eq!(runner.simulations_run(), 2, "distinct keys, distinct runs");
    let plain_report = outcomes[0].report().expect("plain run succeeds");
    let faulted_report = outcomes[1].report().expect("delay faults are survivable");
    assert_eq!(plain_report.faults_injected, 0);
    assert!(faulted_report.faults_injected > 0);
    assert_ne!(
        plain_report.total_cycles.as_u64(),
        faulted_report.total_cycles.as_u64(),
        "this delay mix visibly perturbs timing"
    );

    // The fault-free task is memo-served on a second pass; the plan
    // did not overwrite its slot.
    let again = runner.run_tasks_outcomes(&[plain]);
    assert_eq!(runner.simulations_run(), 2, "memo hit, no re-simulation");
    assert_eq!(
        format!("{:?}", again[0].report().unwrap()),
        format!("{plain_report:?}")
    );
}
