//! End-to-end guarantees of the per-cacheline lens:
//!
//! 1. every run's `RunReport.lens` reconciles exactly against the
//!    counters the caches and networks already keep — push efficacy
//!    classes partition `pushed_fills`, installed + bypassed pushes
//!    equal `direct_pushes`, slice/bank/link sums match the aggregate
//!    stats;
//! 2. a CCSM run is push-quiescent through the lens: no efficacy
//!    records, no pushed lines, no direct-network traffic rows;
//! 3. the lens is observation-only: a lensed run's report equals the
//!    plain run bit for bit (the lens ships in both, so this also
//!    pins its determinism).

use ds_core::{InputSize, Mode, Pipeline, RunReport, SystemConfig};
use ds_probe::{LensReport, NetId, NullTracer};
use ds_workloads::catalog;

fn run(code: &str, mode: Mode) -> RunReport {
    let bench = catalog::by_code(code).expect("test codes are in the catalog");
    Pipeline::with_config(SystemConfig::paper_default())
        .run_one(&bench, InputSize::Small, mode)
        .expect("translates and runs")
}

/// The identities `dslens --check` verifies, as a reusable assertion.
fn assert_reconciles(report: &RunReport) {
    let lens: &LensReport = &report.lens;
    assert_eq!(
        lens.push_total(),
        report.gpu_l2.pushed_fills.value(),
        "useful + dead + clobbered must partition the installed pushes"
    );
    assert_eq!(lens.push_bypasses, report.push_bypasses);
    assert_eq!(
        lens.push_total() + lens.push_bypasses,
        report.direct_pushes,
        "installed + bypassed must equal the CPU-side push count"
    );
    assert_eq!(
        lens.first_touch.samples(),
        lens.push_useful,
        "every useful push contributes exactly one first-touch sample"
    );
    assert!(lens.lines_touched > 0);
    assert!(lens.lines_pushed <= lens.lines_touched);

    let slice_sum = |f: fn(&ds_probe::SliceTraffic) -> u64| lens.slices.iter().map(f).sum::<u64>();
    assert_eq!(slice_sum(|s| s.hits), report.gpu_l2.hits.value());
    assert_eq!(slice_sum(|s| s.misses), report.gpu_l2.misses.value());
    assert_eq!(
        slice_sum(|s| s.push_fills),
        report.gpu_l2.pushed_fills.value()
    );
    assert_eq!(slice_sum(|s| s.push_hits), report.gpu_l2.push_hits.value());
    assert_eq!(slice_sum(|s| s.evictions), report.gpu_l2.evictions.value());
    assert_eq!(
        slice_sum(|s| s.writebacks),
        report.gpu_l2.writebacks.value()
    );

    assert_eq!(
        lens.banks.iter().map(|b| b.reads).sum::<u64>(),
        report.dram_reads
    );
    assert_eq!(
        lens.banks.iter().map(|b| b.writes).sum::<u64>(),
        report.dram_writes
    );
    assert_eq!(
        lens.banks.iter().map(|b| b.row_hits).sum::<u64>(),
        report.dram_row_hits
    );

    for (net, stats) in [
        (NetId::Coherence, &report.coh_net),
        (NetId::Direct, &report.direct_net),
        (NetId::GpuInternal, &report.gpu_net),
    ] {
        assert_eq!(
            lens.net_sums(net),
            (stats.control_msgs, stats.data_msgs),
            "{} link rows must sum to the crossbar totals",
            net.name()
        );
    }
}

#[test]
fn lens_reconciles_against_cache_and_network_counters_in_both_modes() {
    for mode in [Mode::Ccsm, Mode::DirectStore] {
        assert_reconciles(&run("VA", mode));
        assert_reconciles(&run("MM", mode));
    }
}

#[test]
fn ccsm_run_is_push_quiescent_through_the_lens() {
    let report = run("VA", Mode::Ccsm);
    let lens = &report.lens;
    assert_eq!(lens.push_total(), 0);
    assert_eq!(lens.push_bypasses, 0);
    assert_eq!(lens.lines_pushed, 0);
    assert_eq!(lens.first_touch.samples(), 0);
    assert_eq!(lens.net_sums(NetId::Direct), (0, 0));
    assert!(lens.slices.iter().all(|s| s.push_fills == 0));

    // Positive control: direct store on the same benchmark pushes.
    let ds = run("VA", Mode::DirectStore);
    assert!(ds.lens.push_total() > 0);
    assert!(ds.lens.lines_pushed > 0);
}

#[test]
fn lensed_run_returns_the_same_report_and_a_matching_raw_lens() {
    let bench = catalog::by_code("NN").expect("NN is in the catalog");
    let pipeline = Pipeline::with_config(SystemConfig::paper_default());
    let plain = pipeline
        .run_one(&bench, InputSize::Small, Mode::DirectStore)
        .expect("plain run succeeds");
    let (lensed, _, raw) = pipeline
        .run_one_lensed(
            &bench,
            InputSize::Small,
            Mode::DirectStore,
            NullTracer,
            None,
        )
        .expect("lensed run succeeds");
    assert_eq!(
        format!("{plain:?}"),
        format!("{lensed:?}"),
        "the lens must be observation only"
    );
    // The raw lens agrees with the report's summary, and exposes the
    // per-line histories the summary was derived from.
    assert_eq!(format!("{:?}", raw.report()), format!("{:?}", lensed.lens));
    assert_eq!(raw.lines().count() as u64, lensed.lens.lines_touched);
    assert!(raw
        .lines()
        .all(|(_, h)| h.useful + h.dead + h.clobbered == h.pushes));
}
