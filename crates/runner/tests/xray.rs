//! End-to-end guarantees of the per-transaction cycle accounting:
//!
//! 1. the accounting telescopes — for every mode and path, the sum of
//!    per-stage cycles equals the summed end-to-end latencies exactly,
//!    and agrees with the latency histograms' sample counts and sums;
//! 2. the breakdown stitched back from the trace stream equals the
//!    one the live tracker accumulated during the run, per
//!    transaction and in aggregate;
//! 3. CCSM attributes zero cycles to the direct-store push stages and
//!    routes zero messages over the direct network (negative control
//!    for the mode split, with a direct-store positive control).

use ds_core::{InputSize, Mode, Pipeline, SystemConfig};
use ds_probe::{xray, BufferTracer, Stage, TxnPath};
use ds_workloads::catalog;

fn traced_run(code: &str, mode: Mode) -> (ds_core::RunReport, BufferTracer) {
    let cfg = SystemConfig::paper_default();
    let bench = catalog::by_code(code).expect("test codes are in the catalog");
    Pipeline::with_config(cfg)
        .run_one_instrumented(&bench, InputSize::Small, mode, BufferTracer::new(), None)
        .expect("translates and runs")
}

#[test]
fn stage_sums_telescope_to_end_to_end_totals() {
    for (code, mode) in [
        ("VA", Mode::Ccsm),
        ("VA", Mode::DirectStore),
        ("MM", Mode::DirectStore),
        ("BF", Mode::Ccsm),
    ] {
        let (report, _) = traced_run(code, mode);
        let b = &report.stages;
        assert_eq!(
            b.path_stage_sum(TxnPath::GpuLoad),
            b.load_cycles,
            "{code} {mode:?}: load stage sum must equal end-to-end load cycles"
        );
        assert_eq!(
            b.path_stage_sum(TxnPath::Push),
            b.push_cycles,
            "{code} {mode:?}: push stage sum must equal end-to-end push cycles"
        );
        // The accounting and the latency histograms observe the same
        // transactions.
        assert_eq!(b.loads, report.latency.load_to_use.samples());
        assert_eq!(u128::from(b.load_cycles), report.latency.load_to_use.sum());
        assert_eq!(b.pushes, report.direct_pushes);
        assert!(b.loads > 0, "{code} {mode:?}: the run must track loads");
    }
}

#[test]
fn stitched_records_agree_with_the_live_tracker() {
    for mode in [Mode::Ccsm, Mode::DirectStore] {
        let (report, tracer) = traced_run("VA", mode);
        let records = xray::stitch(tracer.events());
        assert_eq!(
            records.len() as u64,
            report.stages.loads + report.stages.pushes,
            "every tracked transaction completes and stitches"
        );
        // Per-record telescoping: segment cycles sum to the record's
        // end-to-end latency.
        for r in &records {
            let seg_sum: u64 = r.segments().iter().map(|&(_, c)| c).sum();
            assert_eq!(seg_sum, r.total(), "txn {} segments must telescope", r.txn);
        }
        assert_eq!(
            xray::breakdown(&records),
            report.stages,
            "{mode:?}: stitched aggregate must equal the live tracker's"
        );
    }
}

#[test]
fn ccsm_attributes_zero_cycles_to_the_direct_store_path() {
    let (report, tracer) = traced_run("VA", Mode::Ccsm);
    for stage in Stage::ALL {
        if stage.path() == TxnPath::Push {
            assert_eq!(
                report.stages.stage_cycles(stage),
                0,
                "CCSM must not accrue cycles in push stage {}",
                stage.name()
            );
        }
    }
    assert_eq!(report.stages.pushes, 0);
    assert_eq!(report.stages.push_cycles, 0);
    assert_eq!(report.direct_net.total_msgs(), 0);
    let records = xray::stitch(tracer.events());
    assert!(records.iter().all(|r| r.path == TxnPath::GpuLoad));

    // Positive control: direct store on the same benchmark does push,
    // so the zeros above are not an accounting blind spot.
    let (ds_report, _) = traced_run("VA", Mode::DirectStore);
    assert!(ds_report.stages.pushes > 0);
    assert!(ds_report.stages.push_cycles > 0);
}
