//! The runner's headline guarantees, asserted end to end:
//!
//! 1. a 4-worker parallel sweep is *bit-identical* to running the same
//!    simulations serially through the pipeline (every cycle count,
//!    miss counter and message counter — compared via the reports'
//!    full `Debug` rendering);
//! 2. a memo-warm second pass performs zero simulations;
//! 3. a disk-cache-warm fresh runner performs zero simulations and
//!    reproduces the same reports.

use ds_core::{InputSize, Mode, Pipeline, SystemConfig};
use ds_runner::{Runner, Task};
use ds_workloads::catalog;

const CODES: [&str; 4] = ["VA", "MM", "NN", "BP"];

fn tasks(cfg: &SystemConfig) -> Vec<Task> {
    CODES
        .iter()
        .flat_map(|code| {
            [
                Task::new(cfg, code, InputSize::Small, Mode::Ccsm),
                Task::new(cfg, code, InputSize::Small, Mode::DirectStore),
            ]
        })
        .collect()
}

/// The serial reference: the same simulations through the pipeline
/// directly, no runner involved.
fn serial_reference(cfg: &SystemConfig) -> Vec<String> {
    let pipeline = Pipeline::with_config(cfg.clone());
    tasks(cfg)
        .iter()
        .map(|t| {
            let bench = catalog::by_code(&t.code).expect("test codes are in the catalog");
            let report = pipeline
                .run_one(&bench, t.input, t.mode)
                .expect("translates");
            format!("{report:?}")
        })
        .collect()
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_and_memo_warm_runs_are_free() {
    let cfg = SystemConfig::paper_default();
    let expected = serial_reference(&cfg);

    let mut runner = Runner::new().jobs(4).progress(false);
    let reports = runner.run_tasks(&tasks(&cfg)).expect("sweep succeeds");
    assert_eq!(runner.simulations_run(), expected.len() as u64);

    let got: Vec<String> = reports.iter().map(|r| format!("{r:?}")).collect();
    assert_eq!(
        got, expected,
        "4-worker runner must reproduce the serial pipeline bit for bit"
    );

    // Memo-warm second pass: same tasks, zero new simulations, same
    // reports.
    let again = runner
        .run_tasks(&tasks(&cfg))
        .expect("memo-warm sweep succeeds");
    assert_eq!(
        runner.simulations_run(),
        expected.len() as u64,
        "warm memo must not re-simulate"
    );
    let again: Vec<String> = again.iter().map(|r| format!("{r:?}")).collect();
    assert_eq!(again, expected);
}

#[test]
fn disk_cache_warm_runner_re_simulates_nothing() {
    let dir = std::env::temp_dir().join(format!("ds-runner-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = SystemConfig::paper_default();

    let mut writer = Runner::new().jobs(4).progress(false).with_disk_cache(&dir);
    let first = writer.run_tasks(&tasks(&cfg)).expect("cold sweep succeeds");
    assert_eq!(writer.simulations_run(), tasks(&cfg).len() as u64);

    // A fresh runner — fresh memo — must be fully served by the disk
    // cache.
    let mut reader = Runner::new().jobs(4).progress(false).with_disk_cache(&dir);
    let second = reader.run_tasks(&tasks(&cfg)).expect("warm sweep succeeds");
    assert_eq!(
        reader.simulations_run(),
        0,
        "warm disk cache must serve every task"
    );
    let first: Vec<String> = first.iter().map(|r| format!("{r:?}")).collect();
    let second: Vec<String> = second.iter().map(|r| format!("{r:?}")).collect();
    assert_eq!(second, first, "cached reports must round-trip exactly");

    // An edited config misses the cache (different fingerprint) and
    // simulates again.
    let mut edited = SystemConfig::paper_default();
    edited.direct_hop_latency += 1;
    let mut third = Runner::new().jobs(2).progress(false).with_disk_cache(&dir);
    third
        .run_tasks(&[Task::new(&edited, "VA", InputSize::Small, Mode::Ccsm)])
        .expect("edited-config run succeeds");
    assert_eq!(third.simulations_run(), 1, "config edit must invalidate");

    std::fs::remove_dir_all(&dir).unwrap();
}
