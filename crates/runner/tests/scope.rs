//! Harness-level ds-scope guarantees, asserted end to end on catalog
//! benchmarks:
//!
//! 1. crash postmortems are deterministic: the same faulted task dumps
//!    byte-identical flight-recorder files regardless of worker count;
//! 2. span trees telescope (children nest, sibling sums never exceed
//!    the parent) and task spans reconcile queue + store + sim +
//!    overhead against their wall clock exactly;
//! 3. scope is zero-overhead when off: a scope-off report is the
//!    scope-on report minus the tree, field for field (the fig4
//!    bit-identity contract).

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use ds_core::{FaultPlan, InputSize, Mode, SystemConfig};
use ds_probe::scope::{self, SpanKind};
use ds_runner::{postmortem_path, Runner, Task, TaskOutcome};

/// Scope enablement and the probe level are process globals; tests
/// that toggle them must not interleave.
fn scope_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Delays hot enough to exhaust the retry budget: some pushes
/// degrade — so the runner reports `Degraded` and dumps a postmortem
/// — but no message is ever lost, so the run still completes (drops
/// at comparable rates sever CPU demand-load replies and abort).
fn degrading_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan {
        seed,
        ack_timeout: 50,
        max_retries: 1,
        ..FaultPlan::default()
    };
    plan.direct_net.delay = 20_000; // ~31% of messages
    plan.direct_net.delay_cycles = 400; // well past the ack timeout
    plan
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ds-scope-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn postmortems_are_byte_identical_across_worker_counts() {
    let _guard = scope_lock();
    let cfg = SystemConfig::paper_default();
    let tasks: Vec<Task> = ["VA", "MM"]
        .iter()
        .map(|code| {
            Task::new(&cfg, code, InputSize::Small, Mode::DirectStore)
                .with_faults(degrading_plan(3))
        })
        .collect();

    let run = |jobs: usize, tag: &str| -> (PathBuf, Vec<TaskOutcome>) {
        let dir = temp_dir(tag);
        let mut runner = Runner::new()
            .jobs(jobs)
            .progress(false)
            .with_postmortems(&dir);
        let outcomes = runner.run_tasks_outcomes(&tasks);
        (dir, outcomes)
    };

    let (narrow_dir, narrow) = run(1, "narrow");
    let (wide_dir, wide) = run(4, "wide");

    for (task, outcome) in tasks.iter().zip(&narrow) {
        assert!(
            matches!(outcome, TaskOutcome::Degraded(_)),
            "{} at this loss rate must degrade, got {}",
            task.code,
            outcome.tag()
        );
        let a = std::fs::read(postmortem_path(&narrow_dir, task))
            .expect("degraded outcome dumps a postmortem");
        let b = std::fs::read(postmortem_path(&wide_dir, task))
            .expect("worker count must not decide whether a postmortem exists");
        assert_eq!(
            a, b,
            "{}: postmortem bytes differ across worker counts",
            task.code
        );
        let text = String::from_utf8(a).expect("postmortems are UTF-8 JSON");
        assert!(text.contains("\"outcome\": \"degraded\""), "{text}");
        assert!(
            text.contains("\"entries\""),
            "faulted tasks arm the flight recorder: {text}"
        );
    }
    assert_eq!(narrow.len(), wide.len());

    let _ = std::fs::remove_dir_all(narrow_dir);
    let _ = std::fs::remove_dir_all(wide_dir);
}

#[test]
fn span_trees_telescope_and_scope_off_is_bit_identical() {
    let _guard = scope_lock();
    let cfg = SystemConfig::paper_default();
    let task = Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore);

    ds_probe::prof::set_level(ds_probe::ProbeLevel::Full);
    scope::set_enabled(true);
    let scoped_outcomes = Runner::new()
        .jobs(1)
        .progress(false)
        .run_tasks_outcomes(std::slice::from_ref(&task));
    scope::set_enabled(false);

    let scoped = scoped_outcomes[0].report().expect("plain VA run succeeds");
    let tree = scoped
        .scope
        .as_ref()
        .expect("scope-on reports carry a span tree");
    tree.check().expect("span tree telescopes");
    let root = tree.find(SpanKind::Task).expect("tree roots at the task");
    let rec = tree.reconcile(root.id).expect("task span reconciles");
    assert_eq!(
        rec.queue_us + rec.store_us + rec.sim_us + rec.overhead_us,
        rec.total_us,
        "queue + store + sim + overhead must sum exactly to the wall clock"
    );
    let sim = tree
        .find(SpanKind::SimRun)
        .expect("task telescopes into sim-run");
    assert!(
        sim.label
            .contains(&scoped.total_cycles.as_u64().to_string()),
        "the sim-run span links to the simulated cycle count: {}",
        sim.label
    );

    // The fig4 contract: scope off, fresh runner, same task — the
    // report is the scoped one minus the tree, field for field.
    let plain_outcomes = Runner::new()
        .jobs(1)
        .progress(false)
        .run_tasks_outcomes(std::slice::from_ref(&task));
    let plain = plain_outcomes[0].report().expect("plain VA run succeeds");
    assert!(
        plain.scope.is_none(),
        "scope-off reports must not carry span trees"
    );
    let mut stripped = scoped.clone();
    stripped.scope = None;
    assert_eq!(
        format!("{plain:?}"),
        format!("{stripped:?}"),
        "scope must be zero-overhead when off"
    );
}
