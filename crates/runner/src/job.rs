//! The job model and the fan-out planner.
//!
//! A [`Task`] is one self-contained simulation: a benchmark code, an
//! input size, a coherence mode and the full [`SystemConfig`] to run
//! under. Its [`TaskKey`] — the config fingerprint plus the three
//! coordinates — is the identity used by the memo, the on-disk cache
//! and deduplication.
//!
//! The planner functions expand sweep/ablation requests into flat,
//! deduplicated task lists; the executor in [`crate::exec`] runs those
//! lists in parallel.

use std::collections::HashSet;

use ds_core::{FaultPlan, InputSize, Mode, Scenario, SystemConfig};
use ds_workloads::{catalog, Benchmark};

use crate::fingerprint::{config_fingerprint, fnv1a};

/// One simulation to run.
#[derive(Debug, Clone)]
pub struct Task {
    /// Full system configuration for this run.
    pub cfg: SystemConfig,
    /// Table II benchmark code (`"VA"`, `"MM"`, ...).
    pub code: String,
    /// Input size.
    pub input: InputSize,
    /// Coherence mode.
    pub mode: Mode,
    /// Fault plan for ds-chaos runs. Inactive by default (no faults,
    /// no retries, no watchdog) — plain experiments are unaffected.
    pub faults: FaultPlan,
    /// ds-pulse sampling window in cycles; `0` (the default) disables
    /// pulse telemetry so plain experiments are unaffected.
    pub pulse: u64,
}

impl Task {
    /// Builds a task.
    pub fn new(cfg: &SystemConfig, code: &str, input: InputSize, mode: Mode) -> Self {
        Task {
            cfg: cfg.clone(),
            code: code.to_string(),
            input,
            mode,
            faults: FaultPlan::default(),
            pulse: 0,
        }
    }

    /// Attaches a fault plan (ds-chaos runs).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Enables ds-pulse telemetry with a sampling window of `window`
    /// cycles (`0` leaves it off).
    pub fn with_pulse(mut self, window: u64) -> Self {
        self.pulse = window;
        self
    }

    /// The task's cache identity.
    pub fn key(&self) -> TaskKey {
        TaskKey {
            fingerprint: config_fingerprint(&self.cfg),
            code: self.code.clone(),
            input: self.input,
            mode: self.mode,
            fault_fp: fault_fingerprint(&self.faults),
            pulse: self.pulse,
        }
    }
}

/// The stable fingerprint of a fault plan: `0` when the plan is
/// inactive (so plain tasks keep their historical identity) and an
/// FNV-1a hash of the plan's canonical `Debug` rendering otherwise.
pub fn fault_fingerprint(plan: &FaultPlan) -> u64 {
    if plan.is_active() {
        fnv1a(format!("{plan:?}").as_bytes())
    } else {
        0
    }
}

/// The identity of a task's result: config fingerprint + benchmark
/// coordinates. Two tasks with equal keys produce bit-identical
/// reports (the simulator is deterministic), so results are shared.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaskKey {
    /// [`config_fingerprint`] of the task's configuration.
    pub fingerprint: u64,
    /// Benchmark code.
    pub code: String,
    /// Input size.
    pub input: InputSize,
    /// Coherence mode.
    pub mode: Mode,
    /// [`fault_fingerprint`] of the task's fault plan (`0` for plain,
    /// fault-free tasks). Faulted results never alias fault-free ones
    /// and are excluded from the on-disk cache.
    pub fault_fp: u64,
    /// ds-pulse window in cycles (`0` for pulse-free tasks, keeping
    /// their historical identity). A pulsed report carries the extra
    /// `pulse` payload, so it must never alias a pulse-free one in the
    /// memo; like faulted results, pulsed results stay out of the
    /// on-disk cache.
    pub pulse: u64,
}

/// Expands a comparison sweep into tasks: for every catalog benchmark
/// `filter` selects, a CCSM run followed by a `ds_mode` run.
///
/// The pairing order is the contract [`crate::Runner::sweep`] relies
/// on to zip reports back into `Comparison`s.
pub fn sweep_tasks(
    cfg: &SystemConfig,
    input: InputSize,
    ds_mode: Mode,
    filter: impl Fn(&Benchmark) -> bool,
) -> Vec<Task> {
    catalog::all()
        .into_iter()
        .filter(filter)
        .flat_map(|b| {
            [
                Task::new(cfg, b.code(), input, Mode::Ccsm),
                Task::new(cfg, b.code(), input, ds_mode),
            ]
        })
        .collect()
}

/// Drops duplicate tasks (same [`TaskKey`]), keeping first-occurrence
/// order. Multi-figure plans overlap heavily — e.g. every ablation
/// re-runs the paper-default CCSM baseline — and deduplication is what
/// turns that overlap into shared work.
pub fn dedup_tasks(tasks: &[Task]) -> Vec<Task> {
    let mut seen = HashSet::new();
    tasks
        .iter()
        .filter(|t| seen.insert(t.key()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_tasks_pair_modes_in_catalog_order() {
        let cfg = SystemConfig::paper_default();
        let tasks = sweep_tasks(&cfg, InputSize::Small, Mode::DirectStore, |_| true);
        assert_eq!(tasks.len(), 44, "22 benchmarks x 2 modes");
        for pair in tasks.chunks(2) {
            assert_eq!(pair[0].code, pair[1].code);
            assert_eq!(pair[0].mode, Mode::Ccsm);
            assert_eq!(pair[1].mode, Mode::DirectStore);
        }
    }

    #[test]
    fn sweep_tasks_respects_filter_and_ds_mode() {
        let cfg = SystemConfig::paper_default();
        let tasks = sweep_tasks(&cfg, InputSize::Big, Mode::DirectStoreOnly, |b| {
            b.code() == "VA"
        });
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[1].mode, Mode::DirectStoreOnly);
        assert_eq!(tasks[0].input, InputSize::Big);
    }

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        let cfg = SystemConfig::paper_default();
        let mut other = SystemConfig::paper_default();
        other.sms = 8;
        let tasks = vec![
            Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm),
            Task::new(&cfg, "MM", InputSize::Small, Mode::Ccsm),
            Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm),
            Task::new(&other, "VA", InputSize::Small, Mode::Ccsm),
        ];
        let unique = dedup_tasks(&tasks);
        assert_eq!(unique.len(), 3, "same-config duplicate dropped");
        assert_eq!(unique[0].code, "VA");
        assert_eq!(unique[1].code, "MM");
        assert_ne!(unique[2].key(), unique[0].key(), "config edit kept");
    }

    #[test]
    fn keys_separate_every_coordinate() {
        let cfg = SystemConfig::paper_default();
        let base = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm).key();
        assert_ne!(
            base,
            Task::new(&cfg, "NN", InputSize::Small, Mode::Ccsm).key()
        );
        assert_ne!(
            base,
            Task::new(&cfg, "VA", InputSize::Big, Mode::Ccsm).key()
        );
        assert_ne!(
            base,
            Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore).key()
        );
    }

    #[test]
    fn pulse_windows_separate_keys_but_zero_does_not() {
        let cfg = SystemConfig::paper_default();
        let plain = Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore);
        assert_eq!(
            plain.key(),
            plain.clone().with_pulse(0).key(),
            "a zero window keeps the historical identity"
        );
        let pulsed = plain.clone().with_pulse(1000);
        assert_ne!(plain.key(), pulsed.key(), "pulsed reports must not alias");
        assert_ne!(
            pulsed.key(),
            plain.with_pulse(500).key(),
            "different windows produce different series"
        );
    }

    #[test]
    fn fault_plans_separate_keys_but_inactive_ones_do_not() {
        let cfg = SystemConfig::paper_default();
        let plain = Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore);
        let with_default = plain.clone().with_faults(FaultPlan::default());
        assert_eq!(
            plain.key(),
            with_default.key(),
            "an inactive plan keeps the historical identity"
        );
        assert_eq!(plain.key().fault_fp, 0);

        let mut faulty = FaultPlan::default();
        faulty.direct_net.drop = 100;
        let faulted = plain.clone().with_faults(faulty.clone());
        assert_ne!(plain.key(), faulted.key());
        let mut other = faulty;
        other.seed = 1;
        assert_ne!(
            faulted.key(),
            plain.with_faults(other).key(),
            "seed edits rehash the plan"
        );
    }
}
