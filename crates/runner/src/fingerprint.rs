//! Stable configuration fingerprints.
//!
//! The result store keys cached runs by a hash of the full
//! [`SystemConfig`]. The hash is FNV-1a over the config's canonical
//! `Debug` rendering: every field participates (adding a field to the
//! config automatically invalidates old cache entries), no new
//! dependencies are needed, and the value is stable across processes —
//! unlike `std`'s randomized default hasher — so it can name on-disk
//! cache files.

use ds_core::SystemConfig;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The stable fingerprint of a configuration.
///
/// Equal configs always agree; distinct configs collide only with FNV's
/// negligible probability, and a collision merely aliases two cache
/// entries (caught by the per-file config string, see the store).
pub fn config_fingerprint(cfg: &SystemConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn equal_configs_agree() {
        assert_eq!(
            config_fingerprint(&SystemConfig::paper_default()),
            config_fingerprint(&SystemConfig::paper_default())
        );
    }

    #[test]
    fn field_edits_change_the_fingerprint() {
        let base = config_fingerprint(&SystemConfig::paper_default());
        let mut sms = SystemConfig::paper_default();
        sms.sms = 8;
        let mut lat = SystemConfig::paper_default();
        lat.direct_hop_latency += 1;
        let mut pf = SystemConfig::paper_default();
        pf.gpu_l2_prefetch = true;
        for (name, cfg) in [("sms", sms), ("latency", lat), ("prefetch", pf)] {
            assert_ne!(base, config_fingerprint(&cfg), "{name} edit must rehash");
        }
    }
}
