//! The concurrency-safe, content-addressed result store.
//!
//! [`SharedStore`] wraps [`ResultStore`] for services whose workers
//! race on overlapping [`TaskKey`]s — the access pattern the `ds-serve`
//! job API produces when many users submit overlapping sweeps. Three
//! guarantees:
//!
//! 1. **Single flight** — for any key, at most one worker computes; a
//!    concurrent request for the same key blocks until the result is
//!    memoized and then shares it (a *coalesced hit*). Identical tasks
//!    across jobs and users are computed exactly once per process, and
//!    at most once per fleet when the disk cache is shared.
//! 2. **Content addressing** — identity is the [`TaskKey`]
//!    (config fingerprint + benchmark coordinates + fault
//!    fingerprint), so a hit is bit-identical to the computation it
//!    replaces: the simulator is deterministic and the JSON cache
//!    round-trips reports losslessly.
//! 3. **Exact accounting** — every request is classified as a hit
//!    (memo/disk), a coalesced hit, or a miss (this caller computed),
//!    and `hits + misses == requests` always holds ([`StoreStats`]);
//!    `dsserve --check` audits exactly this identity.
//!
//! Failed computations (panic, timeout, watchdog abort) are *not*
//! memoized: the outcome is returned to the requester, waiters retry,
//! and the poisoned key never enters the cache.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};

use ds_core::RunReport;

use crate::exec::TaskOutcome;
use crate::job::{Task, TaskKey};
use crate::store::ResultStore;

/// Where a [`SharedStore::get_or_compute`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Served from the memo or the on-disk cache.
    Hit,
    /// Served by waiting on another worker's in-flight computation.
    Coalesced,
    /// Computed by this caller.
    Computed,
}

/// Request accounting for the shared store. The invariant every
/// consumer may rely on (and `dsserve --check` audits):
/// `hits + misses == requests`, with `coalesced <= hits` and
/// `failed <= misses`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Calls to [`SharedStore::get_or_compute`].
    pub requests: u64,
    /// Requests served without computing: memo/disk hits plus
    /// coalesced waits on another worker's computation.
    pub hits: u64,
    /// The subset of `hits` that waited on an in-flight computation.
    pub coalesced: u64,
    /// Requests that computed (successfully or not).
    pub misses: u64,
    /// The subset of `misses` whose computation produced no report.
    pub failed: u64,
}

impl StoreStats {
    /// Whether the accounting identity holds.
    pub fn reconciles(&self) -> bool {
        self.hits + self.misses == self.requests
            && self.coalesced <= self.hits
            && self.failed <= self.misses
    }

    /// Fraction of requests served without computing; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

struct Inner {
    store: ResultStore,
    in_flight: HashSet<TaskKey>,
    stats: StoreStats,
}

/// A [`ResultStore`] safe to share across worker threads, with
/// single-flight computation and hit/miss accounting. See the module
/// docs for the guarantees.
pub struct SharedStore {
    inner: Mutex<Inner>,
    /// Signalled whenever a key leaves the in-flight set.
    done: Condvar,
}

impl SharedStore {
    /// A memory-only shared store.
    pub fn new() -> Self {
        SharedStore {
            inner: Mutex::new(Inner {
                store: ResultStore::new(),
                in_flight: HashSet::new(),
                stats: StoreStats::default(),
            }),
            done: Condvar::new(),
        }
    }

    /// A shared store layered on the on-disk JSON cache under `dir`
    /// (conventionally `results/`). Disk entries count as hits.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        let store = SharedStore::new();
        store.lock().store.enable_disk(dir);
        store
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of the request accounting.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Number of memoized results.
    pub fn len(&self) -> usize {
        self.lock().store.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().store.is_empty()
    }

    /// Looks up `key` without computing (or accounting a request).
    pub fn peek(&self, key: &TaskKey) -> Option<RunReport> {
        self.lock().store.get(key).cloned()
    }

    /// Returns the memoized outcome for `task`, or runs `compute`
    /// exactly once per key across all concurrent callers.
    ///
    /// `compute` runs *outside* the store lock, so long simulations
    /// don't serialize unrelated requests. Successful outcomes (clean
    /// or degraded) are memoized and, when the disk cache is enabled
    /// and the task is fault-free, persisted; failures are returned
    /// but never cached. If the computing caller fails, each waiter
    /// retries in turn rather than inheriting the failure blindly.
    pub fn get_or_compute(
        &self,
        task: &Task,
        compute: impl FnOnce() -> TaskOutcome,
    ) -> (TaskOutcome, Provenance) {
        let key = task.key();
        let mut inner = self.lock();
        inner.stats.requests += 1;
        let mut waited = false;
        loop {
            if let Some(report) = inner.store.get(&key) {
                let outcome = outcome_of(report.clone());
                inner.stats.hits += 1;
                if waited {
                    inner.stats.coalesced += 1;
                }
                return (
                    outcome,
                    if waited {
                        Provenance::Coalesced
                    } else {
                        Provenance::Hit
                    },
                );
            }
            if !inner.in_flight.contains(&key) {
                break;
            }
            waited = true;
            inner = self.done.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        inner.in_flight.insert(key.clone());
        drop(inner);

        let outcome = compute();

        let mut inner = self.lock();
        inner.stats.misses += 1;
        if let Some(report) = outcome.report() {
            inner.store.insert(key.clone(), report.clone());
            if inner.store.disk_enabled() {
                inner.store.persist(key.fingerprint, &task.cfg);
            }
        } else {
            inner.stats.failed += 1;
        }
        inner.in_flight.remove(&key);
        drop(inner);
        self.done.notify_all();
        (outcome, Provenance::Computed)
    }
}

impl Default for SharedStore {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("SharedStore")
            .field("len", &inner.store.len())
            .field("in_flight", &inner.in_flight.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

/// Classifies a completed report the way `run_tasks_outcomes` does.
fn outcome_of(report: RunReport) -> TaskOutcome {
    if report.pushes_degraded > 0 {
        TaskOutcome::Degraded(Box::new(report))
    } else {
        TaskOutcome::Ok(Box::new(report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_core::{InputSize, Mode, SystemConfig};

    fn task() -> Task {
        Task::new(
            &SystemConfig::paper_default(),
            "VA",
            InputSize::Small,
            Mode::Ccsm,
        )
    }

    fn fake_outcome(cycles: u64) -> TaskOutcome {
        let mut report = crate::store::test_report(cycles);
        report.mode = Mode::Ccsm;
        TaskOutcome::Ok(Box::new(report))
    }

    #[test]
    fn repeat_requests_hit() {
        let store = SharedStore::new();
        let t = task();
        let (first, p1) = store.get_or_compute(&t, || fake_outcome(11));
        let (second, p2) = store.get_or_compute(&t, || panic!("must not recompute"));
        assert_eq!(p1, Provenance::Computed);
        assert_eq!(p2, Provenance::Hit);
        assert_eq!(
            format!("{:?}", first.report().unwrap()),
            format!("{:?}", second.report().unwrap())
        );
        let stats = store.stats();
        assert!(stats.reconciles(), "{stats:?}");
        assert_eq!((stats.requests, stats.hits, stats.misses), (2, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn failures_are_not_memoized() {
        let store = SharedStore::new();
        let t = task();
        let (out, _) = store.get_or_compute(&t, || TaskOutcome::TimedOut);
        assert!(out.report().is_none());
        // The key is free again: the next request recomputes.
        let (out, p) = store.get_or_compute(&t, || fake_outcome(5));
        assert_eq!(p, Provenance::Computed);
        assert!(out.report().is_some());
        let stats = store.stats();
        assert!(stats.reconciles(), "{stats:?}");
        assert_eq!((stats.misses, stats.failed), (2, 1));
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        let store = SharedStore::new();
        let computed = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let (out, _) = store.get_or_compute(&task(), || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        // Hold the key in flight long enough for the
                        // other threads to pile up behind it.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        fake_outcome(7)
                    });
                    assert_eq!(out.report().unwrap().total_cycles.as_u64(), 7);
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "single flight");
        let stats = store.stats();
        assert!(stats.reconciles(), "{stats:?}");
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
