//! Minimal JSON: a value model, a writer, and a recursive-descent
//! parser.
//!
//! `serde` is not on the workspace's approved dependency list, so the
//! on-disk result cache and the machine-readable reports hand-roll
//! their JSON through this module. The subset is exactly what the
//! runner needs: objects (insertion-ordered), arrays, strings (with
//! `\uXXXX` escapes), unsigned integers, floats, booleans and null.
//!
//! Integers are kept distinct from floats ([`Json::Int`] vs
//! [`Json::Float`]) so simulator statistics — all `u64` counters —
//! round-trip bit-identically through the cache.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (covers every simulator counter).
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number (integer or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace — the shape
    /// wanted for JSONL event streams and structured log lines.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Ryu-style shortest output is overkill; {v:?}
                    // round-trips f64 exactly in Rust.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was expected or found.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are sound).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("VA \"quoted\"\n".into())),
            ("cycles".into(), Json::Int(u64::MAX)),
            ("rate".into(), Json::Float(0.062_5)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "spans".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Int(100), Json::Int(900)]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        let text = doc.pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn u64_counters_are_exact() {
        for v in [0u64, 1, 1 << 53, u64::MAX - 1, u64::MAX] {
            let text = Json::Int(v).pretty();
            assert_eq!(parse(&text).unwrap(), Json::Int(v), "{v}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = parse(r#"{"s": "a\tbé\n", "π": 3.5}"#).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str().unwrap(), "a\tbé\n");
        assert_eq!(parsed.get("π"), Some(&Json::Float(3.5)));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "12 34", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn negative_and_exponent_numbers_are_floats() {
        assert_eq!(parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": 7, "b": [1], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("b").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(doc.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }
}
