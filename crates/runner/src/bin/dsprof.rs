//! `dsprof` — host-time self-profiling and perf-trend tracking.
//!
//! Runs benchmarks with the `ds_probe::prof` scoped profiler enabled
//! and reports where *host* time goes: the simulator's hot phases
//! (event queue, cache lookups, protocol transitions, the push path,
//! NoC and DRAM ticks) plus the observability tax — the cost of the
//! StageTracker, LineLens, latency histograms and epoch recorder,
//! each in its own bucket. Host time never feeds back into simulated
//! timing; `--check` proves it by asserting bit-identical simulated
//! cycles with the profiler on, off, and at every probe level.
//!
//! ```text
//! dsprof [--bench CODE] [--input small|big] [--mode ccsm|ds|both]
//!        [--probe-level full|stages|minimal] [--format table|folded]
//! dsprof --check [--bench CODE]
//! dsprof trend [--dir DIR] [--last N]
//! ```

use ds_core::{InputSize, Mode, Pipeline, RunReport, Scenario, SystemConfig};
use ds_probe::prof::{self, HostPhase, HostProfile, ProbeLevel};
use ds_runner::json::{self, Json};

const USAGE: &str = "usage: dsprof [options]
       dsprof --check [--bench CODE]
       dsprof trend [--dir DIR] [--last N]

Profiles the simulator's own host time over the Table II catalog and
prints a per-phase breakdown including the observability tax. The
trend subcommand diffs every committed BENCH_<date>.json into a
per-benchmark time series.

options:
  --bench CODE       profile only this benchmark (default: catalog)
  --input small|big  input size (default: small)
  --mode ccsm|ds|both
                     modes to profile (default: both)
  --probe-level full|stages|minimal
                     observability level to profile at (default: full)
  --window N         enable pulse sampling with an N-cycle window
                     during profiling, so the tax_epochs bucket
                     measures the ds-pulse observability tax
                     (default: off)
  --format table|folded
                     per-phase table or folded-stack lines suitable
                     for flamegraph tooling (default: table)
  --check            invariant mode: per-phase sums never exceed
                     wall-clock, shed probe levels have exactly-zero
                     tax buckets, and simulated cycles are
                     bit-identical with the profiler on, off, and at
                     every probe level; exits non-zero on violation
  --dir DIR          (trend) directory holding BENCH_*.json files
                     (default: .)
  --last N           (trend) show only the N newest baselines
                     (default: 8)
  --help             show this help";

struct Options {
    bench: Option<String>,
    input: InputSize,
    modes: Vec<Mode>,
    level: ProbeLevel,
    window: Option<u64>,
    folded: bool,
    check: bool,
    trend: bool,
    dir: String,
    last: usize,
}

fn usage_error(message: &str) -> ! {
    eprintln!("dsprof: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        bench: None,
        input: InputSize::Small,
        modes: vec![Mode::Ccsm, Mode::DirectStore],
        level: ProbeLevel::Full,
        window: None,
        folded: false,
        check: false,
        trend: false,
        dir: ".".to_string(),
        last: 8,
    };
    let mut it = args.iter().peekable();
    if it.peek().map(|s| s.as_str()) == Some("trend") {
        it.next();
        opts.trend = true;
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--bench needs a value"));
                opts.bench = Some(v.clone());
            }
            "--input" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--input needs a value"));
                opts.input = match v.as_str() {
                    "small" => InputSize::Small,
                    "big" => InputSize::Big,
                    other => usage_error(&format!("unknown input size {other:?}")),
                };
            }
            "--mode" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--mode needs a value"));
                opts.modes = match v.as_str() {
                    "ccsm" => vec![Mode::Ccsm],
                    "ds" => vec![Mode::DirectStore],
                    "both" => vec![Mode::Ccsm, Mode::DirectStore],
                    other => usage_error(&format!("unknown mode {other:?}")),
                };
            }
            "--probe-level" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--probe-level needs a value"));
                opts.level = ProbeLevel::parse(v)
                    .unwrap_or_else(|| usage_error(&format!("unknown probe level {v:?}")));
            }
            "--window" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--window needs a value"));
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.window = Some(n),
                    _ => usage_error(&format!("--window needs a positive integer, got {v:?}")),
                }
            }
            "--format" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--format needs a value"));
                opts.folded = match v.as_str() {
                    "table" => false,
                    "folded" => true,
                    other => usage_error(&format!("unknown format {other:?}")),
                };
            }
            "--check" => opts.check = true,
            "--dir" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--dir needs a value"));
                opts.dir = v.clone();
            }
            "--last" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--last needs a value"));
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => opts.last = n,
                    _ => usage_error(&format!("--last needs a positive integer, got {v:?}")),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    opts
}

fn benches(filter: Option<&str>) -> Vec<ds_workloads::Benchmark> {
    match filter {
        Some(code) => match ds_workloads::catalog::by_code(code) {
            Some(b) => vec![b],
            None => {
                eprintln!("dsprof: unknown benchmark code {code:?} (see Table II)");
                std::process::exit(1);
            }
        },
        None => ds_workloads::catalog::all(),
    }
}

/// One profiled simulation. The profiler globals are already set by
/// the caller; a fresh [`System`] picks the probe level up at
/// construction.
///
/// [`System`]: ds_core::System
fn run_profiled(bench: &dyn Scenario, input: InputSize, mode: Mode) -> RunReport {
    run_profiled_pulsed(bench, input, mode, None)
}

/// Like [`run_profiled`] but optionally with pulse sampling enabled,
/// so the `tax_epochs` bucket measures the ds-pulse observability tax.
fn run_profiled_pulsed(
    bench: &dyn Scenario,
    input: InputSize,
    mode: Mode,
    window: Option<u64>,
) -> RunReport {
    let pipeline = Pipeline::with_config(SystemConfig::paper_default());
    pipeline
        .run_one_instrumented(bench, input, mode, ds_probe::NullTracer, window)
        .map(|(report, _)| report)
        .unwrap_or_else(|e| {
            eprintln!("dsprof: {e}");
            std::process::exit(1);
        })
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// The per-phase table: simulation phases first, then the tax
/// buckets, then the untracked remainder, each as self time against
/// total wall-clock.
fn render_table(profile: &HostProfile, runs: &[(String, u64)]) -> String {
    let wall = profile.wall_nanos;
    let mut out = format!(
        "{:16} {:>12} {:>12} {:>7}\n",
        "phase", "spans", "self ms", "% wall"
    );
    let section = |out: &mut String, title: &str, tax: bool| {
        out.push_str(&format!("-- {title}\n"));
        for &phase in HostPhase::ALL.iter().filter(|p| p.is_tax() == tax) {
            out.push_str(&format!(
                "{:16} {:>12} {:>12.3} {:>6.2}%\n",
                phase.name(),
                profile.phase_count(phase),
                ms(profile.phase_nanos(phase)),
                pct(profile.phase_nanos(phase), wall),
            ));
        }
    };
    section(&mut out, "simulation", false);
    section(&mut out, "observability tax", true);
    out.push_str(&format!(
        "-- totals\n\
         {:16} {:>12} {:>12.3} {:>6.2}%\n\
         {:16} {:>12} {:>12.3} {:>6.2}%\n\
         {:16} {:>12} {:>12.3} {:>6.2}%\n\
         {:16} {:>12} {:>12.3} {:>6.2}%\n",
        "tracked",
        "",
        ms(profile.total_self_nanos()),
        pct(profile.total_self_nanos(), wall),
        "tax",
        "",
        ms(profile.tax_nanos()),
        pct(profile.tax_nanos(), wall),
        "untracked",
        "",
        ms(profile.untracked_nanos()),
        pct(profile.untracked_nanos(), wall),
        "wall",
        "",
        ms(wall),
        100.0,
    ));
    out.push_str("-- runs\n");
    for (label, nanos) in runs {
        out.push_str(&format!("{label:16} {:>12.3} ms wall\n", ms(*nanos)));
    }
    out
}

/// The simulated outcome of a run, everything host profiling must
/// not perturb. Compared across profiler variants in `--check`.
fn sim_fingerprint(r: &RunReport) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        r.total_cycles.as_u64(),
        r.events,
        r.dram_reads,
        r.dram_writes,
        r.direct_pushes,
        r.gpu_l2.hits.value(),
        r.gpu_l2.misses.value(),
    )
}

/// The `--check` invariants for one benchmark/input/mode: runs the
/// simulation with the profiler off and then on at every probe
/// level, returning human-readable violations (empty means all
/// hold).
fn check_one(bench: &dyn Scenario, input: InputSize, mode: Mode) -> Vec<String> {
    let code = bench.code();
    let label = format!("{code} {input} {mode}");
    let mut errs = Vec::new();

    prof::set_enabled(false);
    prof::set_level(ProbeLevel::Full);
    let baseline = run_profiled(bench, input, mode);
    if baseline.host.is_some() {
        errs.push(format!("{label}: disabled profiler produced a profile"));
    }
    let expected = sim_fingerprint(&baseline);

    for level in ProbeLevel::ALL {
        prof::set_enabled(true);
        prof::set_level(level);
        let report = run_profiled(bench, input, mode);
        let tag = format!("{label} @{level}");
        if sim_fingerprint(&report) != expected {
            errs.push(format!(
                "{tag}: simulated outcome diverged from unprofiled baseline \
                 ({:?} != {expected:?})",
                sim_fingerprint(&report)
            ));
        }
        let Some(host) = &report.host else {
            errs.push(format!("{tag}: enabled profiler produced no profile"));
            continue;
        };
        if let Err(e) = host.check() {
            errs.push(format!("{tag}: {e}"));
        }
        // Shed observability layers must cost exactly nothing: their
        // tax spans live behind the layer's own disabled guard.
        if level < ProbeLevel::Full {
            for phase in [HostPhase::TaxLens] {
                if host.phase_count(phase) != 0 {
                    errs.push(format!(
                        "{tag}: {} recorded {} spans with the lens shed",
                        phase.name(),
                        host.phase_count(phase)
                    ));
                }
            }
        }
        if level < ProbeLevel::Stages && host.phase_count(HostPhase::TaxStages) != 0 {
            errs.push(format!(
                "{tag}: tax_stages recorded {} spans at minimal level",
                host.phase_count(HostPhase::TaxStages)
            ));
        }
    }
    prof::set_enabled(false);
    prof::set_level(ProbeLevel::Full);
    errs
}

/// One baseline file's slice of the trend view.
struct TrendPoint {
    date: String,
    fingerprint: String,
    geomean: f64,
    /// `(code, input) -> direct-store cycles`.
    entries: Vec<(String, String, u64)>,
    /// Summed host wall nanos across entries, when the baseline
    /// carries per-phase breakdowns (schema version >= 2).
    host_wall: Option<u64>,
}

fn parse_trend_point(text: &str, fallback_date: &str) -> Result<TrendPoint, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Json::as_str) != Some("ds-bench-baseline") {
        return Err("not a ds-bench-baseline document".into());
    }
    let mut entries = Vec::new();
    let mut host_wall = None;
    for entry in doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("missing benchmarks array")?
    {
        let field = |key: &str| {
            entry
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("benchmark entry missing {key}"))
                .map(str::to_string)
        };
        let cycles = entry
            .get("ds")
            .and_then(|m| m.get("total_cycles"))
            .and_then(Json::as_u64)
            .ok_or("benchmark entry missing ds.total_cycles")?;
        for mode in ["ccsm", "ds"] {
            if let Some(wall) = entry
                .get(mode)
                .and_then(|m| m.get("host"))
                .and_then(|h| h.get("wall_nanos"))
                .and_then(Json::as_u64)
            {
                host_wall = Some(host_wall.unwrap_or(0) + wall);
            }
        }
        entries.push((field("code")?, field("input")?, cycles));
    }
    Ok(TrendPoint {
        date: doc
            .get("date")
            .and_then(Json::as_str)
            .unwrap_or(fallback_date)
            .to_string(),
        fingerprint: doc
            .get("config_fingerprint")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        geomean: doc
            .get("geomean_speedup")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        entries,
        host_wall,
    })
}

/// Diffs every `BENCH_*.json` under `dir` into a per-benchmark
/// time series. Returns the rendered report, or an error when no
/// baseline parses.
fn render_trend(dir: &str, last: usize) -> Result<String, String> {
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    files.sort(); // BENCH_YYYY-MM-DD.json sorts chronologically
    if files.is_empty() {
        return Err(format!("no BENCH_*.json files under {dir}"));
    }
    let skipped = files.len().saturating_sub(last);
    let mut points = Vec::new();
    for name in files.iter().skip(skipped) {
        let path = format!("{dir}/{name}");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let fallback = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        points.push(parse_trend_point(&text, &fallback).map_err(|e| format!("{path}: {e}"))?);
    }

    let mut out = format!(
        "dsprof trend: {} baseline{} under {dir}{}\n\n",
        points.len(),
        if points.len() == 1 { "" } else { "s" },
        if skipped > 0 {
            format!(" ({skipped} older skipped; raise --last to include)")
        } else {
            String::new()
        }
    );
    out.push_str(&format!(
        "{:12} {:18} {:>8} {:>8} {:>12}\n",
        "date", "fingerprint", "geomean", "benches", "host ms"
    ));
    for p in &points {
        out.push_str(&format!(
            "{:12} {:18} {:>8.3} {:>8} {:>12}\n",
            p.date,
            p.fingerprint,
            p.geomean,
            p.entries.len(),
            p.host_wall
                .map_or("-".to_string(), |w| format!("{:.1}", ms(w))),
        ));
    }

    // Per-benchmark direct-store cycles, one column per baseline,
    // with the relative change against the previous column.
    out.push_str(&format!("\n{:6} {:6}", "bench", "input"));
    for p in &points {
        out.push_str(&format!(" {:>21}", p.date));
    }
    out.push('\n');
    let mut keys: Vec<(String, String)> = points
        .iter()
        .flat_map(|p| p.entries.iter().map(|(c, i, _)| (c.clone(), i.clone())))
        .collect();
    keys.sort();
    keys.dedup();
    for (code, input) in &keys {
        out.push_str(&format!("{code:6} {input:6}"));
        let mut prev: Option<u64> = None;
        for p in &points {
            match p
                .entries
                .iter()
                .find(|(c, i, _)| c == code && i == input)
                .map(|&(_, _, cycles)| cycles)
            {
                Some(cycles) => {
                    let delta = match prev {
                        Some(old) if old > 0 => {
                            format!("{:+.2}%", 100.0 * (cycles as f64 - old as f64) / old as f64)
                        }
                        _ => "-".to_string(),
                    };
                    out.push_str(&format!(" {cycles:>12} {delta:>8}"));
                    prev = Some(cycles);
                }
                None => {
                    out.push_str(&format!(" {:>12} {:>8}", "-", "-"));
                    prev = None;
                }
            }
        }
        out.push('\n');
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);

    if opts.trend {
        match render_trend(&opts.dir, opts.last) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("dsprof: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if opts.check {
        let mut failed = false;
        for bench in benches(opts.bench.as_deref()) {
            let mut errs = Vec::new();
            for &mode in &opts.modes {
                errs.extend(check_one(&bench, opts.input, mode));
            }
            if errs.is_empty() {
                eprintln!("dsprof: {:4} invariants hold", bench.code());
            } else {
                failed = true;
                for e in &errs {
                    eprintln!("dsprof: check failed: {e}");
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "dsprof: host-time invariants hold (profiler never perturbs simulated cycles; \
             shed levels have zero-cost tax buckets)"
        );
        return;
    }

    prof::set_enabled(true);
    prof::set_level(opts.level);
    let mut merged = HostProfile::default();
    let mut runs = Vec::new();
    for bench in benches(opts.bench.as_deref()) {
        for &mode in &opts.modes {
            let report = run_profiled_pulsed(&bench, opts.input, mode, opts.window);
            let host = report.host.expect("profiler is enabled");
            runs.push((format!("{} {}", bench.code(), mode), host.wall_nanos));
            merged.merge(&host);
        }
    }

    if opts.folded {
        for line in merged.folded() {
            println!("{line}");
        }
    } else {
        println!(
            "dsprof: {} run{} at probe level {} — host-time self profile",
            runs.len(),
            if runs.len() == 1 { "" } else { "s" },
            opts.level,
        );
        print!("{}", render_table(&merged, &runs));
        if opts.window.is_some() {
            println!(
                "pulse tax (tax_epochs): {:.2}% of wall",
                pct(merged.phase_nanos(HostPhase::TaxEpochs), merged.wall_nanos),
            );
        }
    }
}
