//! `dsrun` — the experiment-orchestration CLI.
//!
//! Runs the CCSM-vs-direct-store comparison sweep through the parallel
//! [`Runner`], with optional benchmark selection, worker-count control,
//! an on-disk result cache, and text/JSON/CSV output.
//!
//! ```text
//! dsrun [--input small|big|both] [--bench VA,MM,...] [--mode ds|ds-only]
//!       [--jobs N] [--cache [DIR]] [--format text|json|csv] [--quiet]
//! ```

use ds_core::Scenario as _;
use ds_core::{Comparison, InputSize, Mode, SystemConfig};
use ds_runner::{
    comparison_csv_row, comparison_to_json, json::Json, postmortem_path, sweep_tasks, Runner,
    TaskOutcome, COMPARISON_CSV_HEADER,
};
use std::path::Path;
use std::time::Duration;

const USAGE: &str = "usage: dsrun [options]

Runs the paper's CCSM-vs-direct-store comparison sweep in parallel.

options:
  --input small|big|both   input size(s) to sweep (default: both)
  --bench A,B,...          only these Table II codes (default: all 22)
  --mode ds|ds-only        direct-store variant: complement (default)
                           or the Sec. III.H coherence replacement
  --jobs N                 worker threads (default: DS_RUNNER_JOBS or
                           the machine's available parallelism)
  --cache [DIR]            reuse/populate the on-disk result cache
                           (default DIR: results)
  --format text|json|csv   output format on stdout (default: text)
  --probe-level LEVEL      observability probes kept live: full
                           (default), stages, or minimal; shed levels
                           skip StageTracker/LineLens bookkeeping
                           without touching simulated cycles
  --quiet                  suppress per-job progress lines on stderr
  --keep-going             do not stop at the first failed task: run
                           everything, report failures on stderr, and
                           exit nonzero at the end if any task failed;
                           every non-clean task dumps a postmortem
                           file under <cache-dir>/postmortem/
  --timeout SECS           wall-clock budget per simulation; tasks
                           over budget are abandoned and reported as
                           timed out (requires --keep-going)
  --help                   show this help";

struct Options {
    inputs: Vec<InputSize>,
    codes: Option<Vec<String>>,
    ds_mode: Mode,
    jobs: Option<usize>,
    cache: Option<String>,
    format: Format,
    probe_level: ds_probe::ProbeLevel,
    quiet: bool,
    keep_going: bool,
    timeout: Option<u64>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Csv,
}

fn usage_error(message: &str) -> ! {
    eprintln!("dsrun: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        inputs: vec![InputSize::Small, InputSize::Big],
        codes: None,
        ds_mode: Mode::DirectStore,
        jobs: None,
        cache: None,
        format: Format::Text,
        probe_level: ds_probe::ProbeLevel::Full,
        quiet: false,
        keep_going: false,
        timeout: None,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--input" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--input needs a value"));
                opts.inputs = match v.as_str() {
                    "small" => vec![InputSize::Small],
                    "big" => vec![InputSize::Big],
                    "both" => vec![InputSize::Small, InputSize::Big],
                    other => usage_error(&format!("unknown input size {other:?}")),
                };
            }
            "--bench" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--bench needs a value"));
                opts.codes = Some(v.split(',').map(str::to_string).collect());
            }
            "--mode" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--mode needs a value"));
                opts.ds_mode = match v.as_str() {
                    "ds" => Mode::DirectStore,
                    "ds-only" => Mode::DirectStoreOnly,
                    other => usage_error(&format!("unknown mode {other:?}")),
                };
            }
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--jobs needs a value"));
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => opts.jobs = Some(n),
                    _ => usage_error(&format!("--jobs needs a positive integer, got {v:?}")),
                }
            }
            "--cache" => {
                // Directory operand is optional: `--cache` alone uses
                // the conventional results/ directory.
                let dir = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                    _ => "results".to_string(),
                };
                opts.cache = Some(dir);
            }
            "--format" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--format needs a value"));
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => usage_error(&format!("unknown format {other:?}")),
                };
            }
            "--probe-level" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--probe-level needs a value"));
                opts.probe_level = ds_probe::ProbeLevel::parse(v)
                    .unwrap_or_else(|| usage_error(&format!("unknown probe level {v:?}")));
            }
            "--timeout" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--timeout needs a value"));
                match v.parse::<u64>() {
                    Ok(n) => opts.timeout = Some(n),
                    _ => usage_error(&format!("--timeout needs a number of seconds, got {v:?}")),
                }
            }
            "--quiet" => opts.quiet = true,
            "--keep-going" => opts.keep_going = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);
    // Probe shedding is process-global: set it once before any worker
    // thread simulates. The disk cache refuses to persist shed-level
    // reports, so `--cache` stays safe at every level.
    ds_probe::prof::set_level(opts.probe_level);

    if opts.timeout.is_some() && !opts.keep_going {
        // A timed-out task can only be reported, not retried, so a
        // budget without --keep-going would just abort the sweep.
        usage_error("--timeout requires --keep-going");
    }

    let cfg = SystemConfig::paper_default();
    let mut runner = Runner::new().progress(!opts.quiet);
    if let Some(n) = opts.jobs {
        runner = runner.jobs(n);
    }
    if let Some(dir) = &opts.cache {
        runner = runner.with_disk_cache(dir);
    }
    if let Some(secs) = opts.timeout {
        runner = runner.task_timeout(Duration::from_secs(secs));
    }
    // Under --keep-going every non-clean outcome ships a postmortem
    // file next to the result cache (results/postmortem by default).
    let pm_dir = format!("{}/postmortem", opts.cache.as_deref().unwrap_or("results"));
    if opts.keep_going {
        runner = runner.with_postmortems(&pm_dir);
    }

    let mut all: Vec<Comparison> = Vec::new();
    let mut failed_tasks = 0usize;
    if opts.keep_going {
        // Unknown codes never make it into the sweep's task list, so
        // surface them here instead of silently dropping them.
        if let Some(codes) = &opts.codes {
            for code in codes {
                if ds_workloads::catalog::by_code(code).is_none() {
                    eprintln!("dsrun: unknown benchmark code {code:?} (see Table II)");
                    failed_tasks += 1;
                }
            }
        }
    }
    for &input in &opts.inputs {
        let filter = |b: &ds_workloads::Benchmark| {
            opts.codes
                .as_ref()
                .is_none_or(|codes| codes.iter().any(|c| c == b.code()))
        };
        if opts.keep_going {
            // Run every task and fold only fully-successful pairs into
            // comparisons; failures are reported and counted.
            let tasks = sweep_tasks(&cfg, input, opts.ds_mode, filter);
            let outcomes = runner.run_tasks_outcomes(&tasks);
            for (task, outcome) in tasks.iter().zip(&outcomes) {
                // Degraded runs still yield a comparison, but they also
                // shipped a postmortem — say where it went.
                if matches!(outcome, TaskOutcome::Degraded(_)) {
                    eprintln!(
                        "dsrun: {} {} {}: degraded (postmortem: {})",
                        task.code,
                        task.input,
                        task.mode,
                        postmortem_path(Path::new(&pm_dir), task).display()
                    );
                }
            }
            for (pair, outs) in tasks.chunks(2).zip(outcomes.chunks(2)) {
                if let (Some(ccsm), Some(ds)) = (outs[0].report(), outs[1].report()) {
                    all.push(Comparison {
                        code: pair[0].code.clone(),
                        input,
                        ccsm: ccsm.clone(),
                        direct_store: ds.clone(),
                    });
                } else {
                    for (task, outcome) in pair.iter().zip(outs) {
                        let detail = match outcome {
                            TaskOutcome::Panicked(msg) => format!("panicked: {msg}"),
                            TaskOutcome::TimedOut => "timed out".to_string(),
                            TaskOutcome::Failed(msg) => msg.clone(),
                            _ => continue, // this half of the pair was fine
                        };
                        failed_tasks += 1;
                        eprintln!(
                            "dsrun: {} {} {}: {detail} (postmortem: {})",
                            task.code,
                            task.input,
                            task.mode,
                            postmortem_path(Path::new(&pm_dir), task).display()
                        );
                    }
                }
            }
        } else {
            let sweep = runner
                .sweep(&cfg, input, opts.ds_mode, filter)
                .unwrap_or_else(|e| {
                    eprintln!("dsrun: {e}");
                    std::process::exit(1);
                });
            all.extend(sweep);
        }
    }

    if let Some(codes) = &opts.codes {
        let per_input = all.len() / opts.inputs.len();
        if per_input != codes.len() {
            let known: Vec<&str> = all.iter().map(|c| c.code.as_str()).collect();
            let missing: Vec<&String> = codes
                .iter()
                .filter(|c| !known.contains(&c.as_str()))
                .collect();
            // Under --keep-going a known code can also be absent
            // because its task failed; that is already reported.
            if !missing.is_empty() && !opts.keep_going {
                eprintln!("dsrun: unknown benchmark code(s): {missing:?} (see Table II)");
                std::process::exit(1);
            }
        }
    }

    match opts.format {
        Format::Text => {
            for c in &all {
                println!("{c}");
            }
        }
        Format::Json => {
            let doc = Json::Obj(vec![
                (
                    "fingerprint".into(),
                    Json::Str(format!("{:016x}", Runner::fingerprint(&cfg))),
                ),
                ("mode".into(), Json::Str(opts.ds_mode.to_string())),
                (
                    "comparisons".into(),
                    Json::Arr(all.iter().map(comparison_to_json).collect()),
                ),
            ]);
            println!("{}", doc.pretty());
        }
        Format::Csv => {
            println!("{COMPARISON_CSV_HEADER}");
            for c in &all {
                println!("{}", comparison_csv_row(c));
            }
        }
    }

    if !opts.quiet {
        eprintln!(
            "dsrun: {} comparison(s), {} simulation(s) run{}",
            all.len(),
            runner.simulations_run(),
            if opts.cache.is_some() {
                " (rest served from cache)"
            } else {
                ""
            }
        );
    }
    if failed_tasks > 0 {
        eprintln!("dsrun: {failed_tasks} task(s) failed");
        std::process::exit(1);
    }
}
