//! `dstrace` — the single-run tracing CLI.
//!
//! Runs one benchmark with the in-memory tracer attached and renders
//! the recorded stream in the requested format: raw JSONL events, a
//! Chrome-trace-format document (Perfetto / `chrome://tracing`), the
//! windowed epoch series as CSV, or a human-readable latency summary.
//!
//! ```text
//! dstrace --bench VA [--input small|big] [--mode ccsm|ds|ds-only]
//!         [--format summary|jsonl|chrome|epochs] [--window N]
//!         [--out FILE] [--check]
//! ```

use ds_core::{InputSize, Mode, Pipeline, RunReport, SystemConfig};
use ds_probe::{chrome, jsonl, render_epoch_csv, BufferTracer};
use ds_runner::json;

const USAGE: &str = "usage: dstrace --bench CODE [options]

Runs one benchmark with tracing enabled and writes the trace.

options:
  --bench CODE             Table II benchmark code (required), e.g. VA
  --input small|big        input size (default: small)
  --mode ccsm|ds|ds-only   coherence mode (default: ds; direct is
                           accepted as an alias for ds)
  --format summary|jsonl|chrome|epochs
                           output format (default: summary):
                           summary  latency histograms + run counters
                           jsonl    one JSON object per trace event
                           chrome   Chrome trace-event JSON (load in
                                    Perfetto or chrome://tracing)
                           epochs   windowed activity series as CSV
  --window N               pulse window in cycles (default: 1000 for
                           --format epochs, off otherwise); with
                           --format chrome, also emits pulse counter
                           tracks and anomaly instants
  --out FILE               write to FILE instead of stdout
  --check                  re-parse the rendered output and fail if it
                           is not well-formed
  --help                   show this help";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Summary,
    Jsonl,
    Chrome,
    Epochs,
}

struct Options {
    code: String,
    input: InputSize,
    mode: Mode,
    format: Format,
    window: Option<u64>,
    out: Option<String>,
    check: bool,
}

fn usage_error(message: &str) -> ! {
    eprintln!("dstrace: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut code = None;
    let mut opts = Options {
        code: String::new(),
        input: InputSize::Small,
        mode: Mode::DirectStore,
        format: Format::Summary,
        window: None,
        out: None,
        check: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--bench needs a value"));
                code = Some(v.clone());
            }
            "--input" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--input needs a value"));
                opts.input = match v.as_str() {
                    "small" => InputSize::Small,
                    "big" => InputSize::Big,
                    other => usage_error(&format!("unknown input size {other:?}")),
                };
            }
            "--mode" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--mode needs a value"));
                opts.mode = match v.as_str() {
                    "ccsm" => Mode::Ccsm,
                    "ds" | "direct" => Mode::DirectStore,
                    "ds-only" => Mode::DirectStoreOnly,
                    other => usage_error(&format!("unknown mode {other:?}")),
                };
            }
            "--format" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--format needs a value"));
                opts.format = match v.as_str() {
                    "summary" => Format::Summary,
                    "jsonl" => Format::Jsonl,
                    "chrome" => Format::Chrome,
                    "epochs" => Format::Epochs,
                    other => usage_error(&format!("unknown format {other:?}")),
                };
            }
            "--window" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--window needs a value"));
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.window = Some(n),
                    _ => usage_error(&format!("--window needs a positive integer, got {v:?}")),
                }
            }
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out needs a value"));
                opts.out = Some(v.clone());
            }
            "--check" => opts.check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    opts.code = code.unwrap_or_else(|| usage_error("--bench is required"));
    opts
}

/// `--check` exit code for an empty trace: distinct from validation
/// failure (1) and usage errors (2), so callers can tell "nothing was
/// recorded" apart from "output malformed". An empty stream passes
/// every per-line/per-row validation vacuously; that must not read as
/// success.
const EXIT_EMPTY_TRACE: i32 = 3;

/// Full `--check` validation: an empty trace fails with
/// [`EXIT_EMPTY_TRACE`], anything malformed with exit code 1.
fn check_trace(format: Format, events: usize, text: &str) -> Result<(), (i32, String)> {
    if events == 0 {
        return Err((
            EXIT_EMPTY_TRACE,
            "trace is empty (no events recorded)".to_string(),
        ));
    }
    check_output(format, text).map_err(|e| (1, e))
}

/// Validates rendered output before it is written: JSONL must parse
/// line by line, a Chrome trace as one document, an epoch CSV must
/// carry its exact header and well-formed, non-overlapping windows.
fn check_output(format: Format, text: &str) -> Result<(), String> {
    match format {
        Format::Jsonl => {
            for (i, line) in text.lines().enumerate() {
                json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            }
            Ok(())
        }
        Format::Chrome => {
            let doc = json::parse(text).map_err(|e| e.to_string())?;
            doc.get("traceEvents")
                .and_then(json::Json::as_arr)
                .map(|_| ())
                .ok_or_else(|| "missing traceEvents array".to_string())
        }
        Format::Epochs => check_epoch_csv(text),
        Format::Summary => Ok(()),
    }
}

/// Epoch-CSV validation: the header line must match exactly, every
/// row's `[start, end)` window must be non-empty (`end > start`), and
/// consecutive windows must not overlap (`start >= previous end`).
fn check_epoch_csv(text: &str) -> Result<(), String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(header) if header == ds_probe::EPOCH_CSV_HEADER => {}
        _ => return Err("missing epoch CSV header".to_string()),
    }
    let mut prev_end = 0u64;
    for (i, line) in lines.enumerate() {
        let row = i + 2; // 1-based, after the header
        let mut fields = line.split(',');
        let start: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| format!("row {row}: window_start is not an integer"))?;
        let end: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| format!("row {row}: window_end is not an integer"))?;
        if end <= start {
            return Err(format!(
                "row {row}: window [{start}, {end}) is zero-width or inverted"
            ));
        }
        if start < prev_end {
            return Err(format!(
                "row {row}: window [{start}, {end}) overlaps previous (ends at {prev_end})"
            ));
        }
        prev_end = end;
    }
    Ok(())
}

fn summary(report: &RunReport, events: usize) -> String {
    let mut s = format!(
        "{} {}: {} cycles, {} kernel(s), {} warp(s), {} trace event(s)\n",
        report.mode,
        if report.kernels_run > 0 {
            "run"
        } else {
            "idle"
        },
        report.total_cycles.as_u64(),
        report.kernels_run,
        report.warps_completed,
        events,
    );
    s.push_str(&format!(
        "gpu_l2: {:.4} miss rate, {} push hit(s); {} direct push(es), {} bypass(es)\n",
        report.gpu_l2_miss_rate(),
        report.gpu_l2.push_hits.value(),
        report.direct_pushes,
        report.push_bypasses,
    ));
    s.push_str(&format!("{}\n", report.latency));
    if report.epoch_window > 0 {
        s.push_str(&format!(
            "epochs: {} window(s) of {} cycles\n",
            report.epochs.len(),
            report.epoch_window,
        ));
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);

    let bench = ds_workloads::catalog::by_code(&opts.code).unwrap_or_else(|| {
        eprintln!(
            "dstrace: unknown benchmark code {:?} (see Table II)",
            opts.code
        );
        std::process::exit(1);
    });

    let window = opts
        .window
        .or((opts.format == Format::Epochs).then_some(1000));
    let pipeline = Pipeline::with_config(SystemConfig::paper_default());
    let (report, tracer) = pipeline
        .run_one_instrumented(&bench, opts.input, opts.mode, BufferTracer::new(), window)
        .unwrap_or_else(|e| {
            eprintln!("dstrace: {e}");
            std::process::exit(1);
        });
    let events = tracer.into_events();

    let text = match opts.format {
        Format::Summary => summary(&report, events.len()),
        Format::Jsonl => jsonl::render(&events),
        Format::Chrome => chrome::render_with_pulse(&events, report.pulse.as_ref()),
        Format::Epochs => render_epoch_csv(report.epoch_window, &report.epochs),
    };

    if opts.check {
        if let Err((code, e)) = check_trace(opts.format, events.len(), &text) {
            eprintln!("dstrace: output failed validation: {e}");
            std::process::exit(code);
        }
    }

    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("dstrace: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "dstrace: {} {} {}: {} event(s) -> {path}",
                opts.code,
                opts.input,
                report.mode,
                events.len(),
            );
        }
        None => print!("{text}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch_csv(rows: &[(u64, u64)]) -> String {
        let mut s = format!("{}\n", ds_probe::EPOCH_CSV_HEADER);
        for (start, end) in rows {
            s.push_str(&format!("{start},{end},0,0,0.0000,0,0,0,0,0,0,0\n"));
        }
        s
    }

    #[test]
    fn empty_trace_fails_check_with_distinct_code() {
        for format in [
            Format::Summary,
            Format::Jsonl,
            Format::Chrome,
            Format::Epochs,
        ] {
            let (code, msg) = check_trace(format, 0, "").unwrap_err();
            assert_eq!(code, EXIT_EMPTY_TRACE);
            assert!(msg.contains("empty"), "{msg}");
        }
        // A non-empty trace with valid output still passes...
        assert!(check_trace(Format::Jsonl, 3, "{\"a\": 1}\n{\"b\": 2}\n").is_ok());
        // ...and malformed output still fails with the plain code.
        let (code, _) = check_trace(Format::Jsonl, 3, "not json\n").unwrap_err();
        assert_eq!(code, 1);
    }

    #[test]
    fn epoch_check_accepts_well_formed_windows() {
        assert!(check_epoch_csv(&epoch_csv(&[(0, 1000), (1000, 2000), (2000, 3000)])).is_ok());
        // Gaps are fine (idle windows are not emitted); only overlap
        // and emptiness are errors.
        assert!(check_epoch_csv(&epoch_csv(&[(0, 1000), (5000, 6000)])).is_ok());
        assert!(check_epoch_csv(&epoch_csv(&[])).is_ok());
    }

    #[test]
    fn epoch_check_rejects_zero_width_and_inverted_windows() {
        let err = check_epoch_csv(&epoch_csv(&[(0, 1000), (1000, 1000)])).unwrap_err();
        assert!(err.contains("zero-width or inverted"), "{err}");
        let err = check_epoch_csv(&epoch_csv(&[(2000, 1000)])).unwrap_err();
        assert!(err.contains("zero-width or inverted"), "{err}");
    }

    #[test]
    fn epoch_check_rejects_overlapping_windows() {
        let err = check_epoch_csv(&epoch_csv(&[(0, 1000), (500, 1500)])).unwrap_err();
        assert!(err.contains("overlaps previous"), "{err}");
    }

    #[test]
    fn epoch_check_rejects_bad_header_and_malformed_rows() {
        assert!(check_epoch_csv("nope\n0,1000\n").is_err());
        let mut s = format!("{}\n", ds_probe::EPOCH_CSV_HEADER);
        s.push_str("abc,1000,0,0,0.0,0,0,0,0,0,0,0\n");
        let err = check_epoch_csv(&s).unwrap_err();
        assert!(err.contains("window_start"), "{err}");
    }
}
