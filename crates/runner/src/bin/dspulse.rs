//! `dspulse` — the cycle-domain time-series telemetry CLI.
//!
//! Runs one benchmark with the pulse sampler attached and renders the
//! windowed counter series: a sparkline terminal dashboard, the raw
//! per-window CSV, or an anomaly report. `--check` instead sweeps the
//! full small catalog and proves the observability contract: every
//! per-window counter series sums exactly to the corresponding final
//! `RunReport` total, the report serializes bit-identically with pulse
//! stripped (sampling never perturbs simulated timing — the fig-4
//! guarantee), and a seeded fault run produces at least one detected
//! anomaly.
//!
//! ```text
//! dspulse --bench VA [--input small|big] [--mode ccsm|ds|ds-only]
//!         [--window N] [--format dashboard|csv|report] [--out FILE]
//!         [--seed N] [--drop RATE]
//! dspulse --check [--window N]
//! ```

use ds_core::Scenario as _;
use ds_core::{FaultPlan, InputSize, Mode, Pipeline, RunReport, SystemConfig};
use ds_probe::pulse::{ctr, gauge, PULSE_COUNTER_NAMES, PULSE_GAUGE_NAMES};
use ds_probe::{sparkline, NullTracer, PulseConfig, PulseSeries, DEFAULT_PULSE_WINDOW};
use ds_runner::report_to_json;
use ds_workloads::catalog;

const USAGE: &str = "usage: dspulse --bench CODE [options]
       dspulse --check [--window N]

Runs one benchmark with pulse telemetry and renders the time series.

options:
  --bench CODE             Table II benchmark code, e.g. VA
  --input small|big        input size (default: small)
  --mode ccsm|ds|ds-only   coherence mode (default: ds; direct is
                           accepted as an alias for ds)
  --window N               pulse window in cycles (default: 1000)
  --format dashboard|csv|report
                           output format (default: dashboard):
                           dashboard  sparkline panel per counter
                           csv        one row per window, all series
                           report     anomaly report + totals
  --seed N                 fault-plan seed (default: 0)
  --drop RATE              direct-network drop rate in parts-per-65536
                           (default: 0 = no faults); activates the
                           ack/retry protocol so anomaly detectors
                           have something to find
  --delay RATE             direct-network delay rate in parts-per-65536
                           (default: 0); delayed acks overshoot the ack
                           timeout and trigger retries without ever
                           losing a message
  --delay-cycles N         extra latency for delayed messages
                           (default: 400, past the 200-cycle ack
                           timeout)
  --sb-entries N           override the store-buffer size (default:
                           paper Table I, 16 entries); starving the
                           buffer is the reproducible way to drive
                           the stall-storm detector
  --out FILE               write to FILE instead of stdout
  --check                  sweep the full small catalog in ccsm and ds
                           modes proving conservation and pulse-off
                           bit-identity, then a seeded fault run that
                           must surface at least one anomaly
  --help                   show this help";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Dashboard,
    Csv,
    Report,
}

struct Options {
    code: String,
    input: InputSize,
    mode: Mode,
    window: u64,
    format: Format,
    seed: u64,
    drop: u16,
    delay: u16,
    delay_cycles: u64,
    sb_entries: Option<usize>,
    out: Option<String>,
    check: bool,
}

fn usage_error(message: &str) -> ! {
    eprintln!("dspulse: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut code = None;
    let mut opts = Options {
        code: String::new(),
        input: InputSize::Small,
        mode: Mode::DirectStore,
        window: DEFAULT_PULSE_WINDOW,
        format: Format::Dashboard,
        seed: 0,
        drop: 0,
        delay: 0,
        delay_cycles: 400,
        sb_entries: None,
        out: None,
        check: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--bench needs a value"));
                code = Some(v.clone());
            }
            "--input" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--input needs a value"));
                opts.input = match v.as_str() {
                    "small" => InputSize::Small,
                    "big" => InputSize::Big,
                    other => usage_error(&format!("unknown input size {other:?}")),
                };
            }
            "--mode" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--mode needs a value"));
                opts.mode = match v.as_str() {
                    "ccsm" => Mode::Ccsm,
                    "ds" | "direct" => Mode::DirectStore,
                    "ds-only" => Mode::DirectStoreOnly,
                    other => usage_error(&format!("unknown mode {other:?}")),
                };
            }
            "--window" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--window needs a value"));
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.window = n,
                    _ => usage_error(&format!("--window needs a positive integer, got {v:?}")),
                }
            }
            "--format" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--format needs a value"));
                opts.format = match v.as_str() {
                    "dashboard" => Format::Dashboard,
                    "csv" => Format::Csv,
                    "report" => Format::Report,
                    other => usage_error(&format!("unknown format {other:?}")),
                };
            }
            "--seed" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--seed needs a value"));
                opts.seed = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--seed needs an integer, got {v:?}"))
                });
            }
            "--drop" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--drop needs a value"));
                opts.drop = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--drop needs a rate in 0..=65535, got {v:?}"))
                });
            }
            "--delay" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--delay needs a value"));
                opts.delay = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--delay needs a rate in 0..=65535, got {v:?}"))
                });
            }
            "--delay-cycles" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--delay-cycles needs a value"));
                opts.delay_cycles = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--delay-cycles needs an integer, got {v:?}"))
                });
            }
            "--sb-entries" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--sb-entries needs a value"));
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => opts.sb_entries = Some(n),
                    _ => usage_error(&format!("--sb-entries needs a positive integer, got {v:?}")),
                }
            }
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out needs a value"));
                opts.out = Some(v.clone());
            }
            "--check" => opts.check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if !opts.check {
        opts.code = code.unwrap_or_else(|| usage_error("--bench is required (or use --check)"));
    }
    opts
}

/// The fault plan a `--drop` / `--delay` run executes under:
/// deterministic drops and delays on the direct-store network with the
/// default ack/retry protocol, so the retry-burst and
/// livelock-precursor detectors have real signal.
fn fault_plan(seed: u64, drop: u16, delay: u16, delay_cycles: u64) -> FaultPlan {
    let mut plan = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    plan.direct_net.drop = drop;
    plan.direct_net.delay = delay;
    plan.direct_net.delay_cycles = delay_cycles;
    plan
}

/// CSV header for the per-window series: the window bounds followed by
/// every counter delta and every sampled gauge, in declaration order.
fn pulse_csv_header() -> String {
    let mut s = String::from("window_start,window_end");
    for name in PULSE_COUNTER_NAMES {
        s.push(',');
        s.push_str(name);
    }
    for name in PULSE_GAUGE_NAMES {
        s.push(',');
        s.push_str(name);
    }
    s
}

fn render_csv(series: &PulseSeries) -> String {
    let mut s = pulse_csv_header();
    s.push('\n');
    for w in 0..series.len() {
        let (start, end) = series.window_bounds(w);
        s.push_str(&format!("{start},{end}"));
        for c in 0..PULSE_COUNTER_NAMES.len() {
            s.push_str(&format!(",{}", series.counter(c)[w]));
        }
        for g in 0..PULSE_GAUGE_NAMES.len() {
            s.push_str(&format!(",{}", series.gauge(g)[w]));
        }
        s.push('\n');
    }
    s
}

/// The curated dashboard panel: the series a human scans first when a
/// run looks unhealthy, in rough causal order (work issued → memory
/// system → push protocol → queue pressure).
const DASHBOARD_COUNTERS: &[usize] = &[
    ctr::SM_OPS,
    ctr::GPU_L2_ACCESSES,
    ctr::GPU_L2_MISSES,
    ctr::DRAM_BUSY_CYCLES,
    ctr::COH_MSGS,
    ctr::DIRECT_MSGS,
    ctr::GPU_MSGS,
    ctr::DIRECT_PUSHES,
    ctr::PUSHES_RETRIED,
    ctr::PUSHES_DEGRADED,
    ctr::SB_STALLS,
    ctr::EVENTS,
];

const DASHBOARD_GAUGES: &[usize] = &[
    gauge::QUEUE_DEPTH,
    gauge::SB_OCCUPANCY,
    gauge::INFLIGHT_PUSHES,
];

const SPARK_WIDTH: usize = 60;

fn render_dashboard(header: &str, series: &PulseSeries) -> String {
    let mut s = format!(
        "{header}: {} window(s) of {} cycles (base {}, {} coalescing(s))\n",
        series.len(),
        series.window,
        series.base_window,
        series.coalescings,
    );
    let name_w = PULSE_COUNTER_NAMES
        .iter()
        .chain(PULSE_GAUGE_NAMES.iter())
        .map(|n| n.len())
        .max()
        .unwrap_or(0);
    for &c in DASHBOARD_COUNTERS {
        let values = series.counter(c);
        s.push_str(&format!(
            "  {:<name_w$} {:<SPARK_WIDTH$} total {}\n",
            PULSE_COUNTER_NAMES[c],
            sparkline(values, SPARK_WIDTH),
            series.totals.counters[c],
        ));
    }
    for &g in DASHBOARD_GAUGES {
        let values = series.gauge(g);
        s.push_str(&format!(
            "  {:<name_w$} {:<SPARK_WIDTH$} peak  {}\n",
            PULSE_GAUGE_NAMES[g],
            sparkline(values, SPARK_WIDTH),
            values.iter().max().copied().unwrap_or(0),
        ));
    }
    s.push_str(&render_anomaly_lines(series));
    s
}

fn render_anomaly_lines(series: &PulseSeries) -> String {
    if series.anomalies.is_empty() {
        return "anomalies: none\n".to_string();
    }
    let mut s = format!("anomalies ({}):\n", series.anomalies.len());
    for a in &series.anomalies {
        s.push_str(&format!("  {a}\n"));
    }
    s
}

fn render_report(header: &str, series: &PulseSeries) -> String {
    let mut s = format!(
        "{header}: {} window(s) of {} cycles\n",
        series.len(),
        series.window,
    );
    s.push_str(&render_anomaly_lines(series));
    s.push_str("totals:\n");
    for (c, name) in PULSE_COUNTER_NAMES.iter().enumerate() {
        if series.totals.counters[c] > 0 {
            s.push_str(&format!("  {name}: {}\n", series.totals.counters[c]));
        }
    }
    s
}

/// Every pulse counter with an exact `RunReport` counterpart, paired
/// with that counterpart. `dram_busy_cycles` and `sm_ops` are pulse-
/// only (the report never carried them), so conservation for those two
/// rests on [`PulseSeries::check_conservation`] alone.
fn report_counterparts(r: &RunReport) -> Vec<(usize, u64)> {
    vec![
        (ctr::GPU_L2_ACCESSES, r.gpu_l2.accesses()),
        (ctr::GPU_L2_MISSES, r.gpu_l2.misses.value()),
        (ctr::CPU_L2_ACCESSES, r.cpu_l2.accesses()),
        (ctr::CPU_L2_MISSES, r.cpu_l2.misses.value()),
        (ctr::COH_MSGS, r.coh_net.total_msgs()),
        (ctr::DIRECT_MSGS, r.direct_net.total_msgs()),
        (ctr::GPU_MSGS, r.gpu_net.total_msgs()),
        (ctr::COH_BYTES, r.coh_net.bytes),
        (ctr::DIRECT_BYTES, r.direct_net.bytes),
        (ctr::GPU_BYTES, r.gpu_net.bytes),
        (ctr::DRAM_READS, r.dram_reads),
        (ctr::DRAM_WRITES, r.dram_writes),
        (ctr::DRAM_ROW_HITS, r.dram_row_hits),
        (ctr::DIRECT_PUSHES, r.direct_pushes),
        (ctr::PUSHES_ATTEMPTED, r.pushes_attempted),
        (ctr::PUSHES_RETRIED, r.pushes_retried),
        (ctr::PUSHES_DEGRADED, r.pushes_degraded),
        (ctr::PUSH_BYPASSES, r.push_bypasses),
        (ctr::FAULTS_INJECTED, r.faults_injected),
        (ctr::SB_STALLS, r.store_buffer_stalls),
        (ctr::WARPS_COMPLETED, r.warps_completed),
        (ctr::KERNELS_RUN, r.kernels_run),
        (ctr::HUB_TRANSACTIONS, r.hub_transactions),
        (ctr::HUB_CONFLICTS, r.hub_conflicts),
        (ctr::HUB_PROBES, r.hub_probes),
        (ctr::EVENTS, r.events),
    ]
}

/// Proves `series` conserves against the final `report` totals: the
/// internal invariant (windows sum to series totals) plus the cross
/// check that those totals equal the `RunReport`'s own counters.
fn check_against_report(series: &PulseSeries, report: &RunReport) -> Result<(), String> {
    series.check_conservation()?;
    for (c, expect) in report_counterparts(report) {
        let got = series.totals.counters[c];
        if got != expect {
            return Err(format!(
                "counter {} sums to {got} but the run report says {expect}",
                PULSE_COUNTER_NAMES[c],
            ));
        }
    }
    Ok(())
}

/// The fig-4 guarantee, proven at the byte level: a pulsed run's
/// report with the pulse payload stripped must serialize identically
/// to the plain run's — same cycles, same counters, same histograms.
fn check_bit_identity(baseline: &RunReport, pulsed: &RunReport) -> Result<(), String> {
    let mut stripped = pulsed.clone();
    stripped.pulse = None;
    stripped.epochs = Vec::new();
    stripped.epoch_window = 0;
    let a = report_to_json(baseline).pretty();
    let b = report_to_json(&stripped).pretty();
    if a != b {
        return Err(format!(
            "pulsed report differs from baseline (pulse stripped): \
             {} vs {} cycles",
            pulsed.total_cycles.as_u64(),
            baseline.total_cycles.as_u64(),
        ));
    }
    Ok(())
}

/// The `--check` sweep. Exits nonzero on the first violated invariant.
fn run_check(window: u64) -> Result<(), String> {
    let pipeline = Pipeline::with_config(SystemConfig::paper_default());
    let cfg = PulseConfig::with_window(window);
    let mut runs = 0usize;
    for bench in catalog::all() {
        for mode in [Mode::Ccsm, Mode::DirectStore] {
            let label = format!("{} small {mode}", bench.code());
            let baseline = pipeline
                .run_one(&bench, InputSize::Small, mode)
                .map_err(|e| format!("{label}: baseline run failed: {e}"))?;
            let (result, _) = pipeline.run_one_pulsed(
                &bench,
                InputSize::Small,
                mode,
                NullTracer,
                cfg,
                &FaultPlan::default(),
            );
            let pulsed = result.map_err(|e| format!("{label}: pulsed run failed: {e}"))?;
            let series = pulsed
                .pulse
                .as_ref()
                .ok_or_else(|| format!("{label}: pulsed run carries no pulse series"))?;
            check_against_report(series, &pulsed).map_err(|e| format!("{label}: {e}"))?;
            check_bit_identity(&baseline, &pulsed).map_err(|e| format!("{label}: {e}"))?;
            runs += 1;
        }
    }
    eprintln!("dspulse --check: {runs} run(s) conserved and bit-identical with pulse stripped");

    // A seeded fault sweep must surface at least one anomaly: drops on
    // the direct network force retries, and the retry-burst / livelock-
    // precursor detectors must see them.
    let plan = fault_plan(7, 0, 32_000, 400);
    let (result, _) = pipeline.run_one_pulsed(
        catalog::by_code("VA").as_ref().expect("VA is in Table II"),
        InputSize::Small,
        Mode::DirectStore,
        NullTracer,
        cfg,
        &plan,
    );
    let faulted = result.map_err(|e| format!("seeded fault run failed: {e}"))?;
    let series = faulted
        .pulse
        .as_ref()
        .ok_or_else(|| "seeded fault run carries no pulse series".to_string())?;
    series
        .check_conservation()
        .map_err(|e| format!("seeded fault run: {e}"))?;
    if series.anomalies.is_empty() {
        return Err(format!(
            "seeded fault run (seed {}, delay {}) detected no anomalies \
             despite {} retried / {} degraded push(es)",
            plan.seed, plan.direct_net.delay, faulted.pushes_retried, faulted.pushes_degraded,
        ));
    }
    eprintln!(
        "dspulse --check: seeded fault run surfaced {} anomaly(ies), e.g. {}",
        series.anomalies.len(),
        series.anomalies[0],
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);

    if opts.check {
        if let Err(e) = run_check(opts.window) {
            eprintln!("dspulse: check failed: {e}");
            std::process::exit(1);
        }
        println!("dspulse --check: ok");
        return;
    }

    let bench = catalog::by_code(&opts.code).unwrap_or_else(|| {
        eprintln!(
            "dspulse: unknown benchmark code {:?} (see Table II)",
            opts.code
        );
        std::process::exit(1);
    });

    let mut cfg = SystemConfig::paper_default();
    if let Some(entries) = opts.sb_entries {
        cfg.store_buffer_entries = entries;
    }
    let pipeline = Pipeline::with_config(cfg);
    let plan = fault_plan(opts.seed, opts.drop, opts.delay, opts.delay_cycles);
    let (result, _) = pipeline.run_one_pulsed(
        &bench,
        opts.input,
        opts.mode,
        NullTracer,
        PulseConfig::with_window(opts.window),
        &plan,
    );
    let report = result.unwrap_or_else(|e| {
        eprintln!("dspulse: {e}");
        std::process::exit(1);
    });
    let series = report.pulse.as_ref().expect("pulsed run carries a series");

    let header = format!(
        "{} {} {}: {} cycles",
        opts.code,
        opts.input,
        report.mode,
        report.total_cycles.as_u64(),
    );
    let text = match opts.format {
        Format::Dashboard => render_dashboard(&header, series),
        Format::Csv => render_csv(series),
        Format::Report => render_report(&header, series),
    };

    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("dspulse: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "dspulse: {} {} {}: {} window(s) -> {path}",
                opts.code,
                opts.input,
                report.mode,
                series.len(),
            );
        }
        None => print!("{text}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_header_carries_every_series() {
        let header = pulse_csv_header();
        assert!(header.starts_with("window_start,window_end,gpu_l2_accesses,"));
        assert_eq!(
            header.split(',').count(),
            2 + PULSE_COUNTER_NAMES.len() + PULSE_GAUGE_NAMES.len()
        );
    }

    #[test]
    fn fault_plan_is_inactive_without_faults() {
        assert!(!fault_plan(7, 0, 0, 400).is_active());
        let dropped = fault_plan(7, 1000, 0, 400);
        assert!(dropped.is_active());
        assert!(dropped.retries_enabled());
        assert_eq!(dropped.seed, 7);
        let delayed = fault_plan(7, 0, 1000, 400);
        assert!(delayed.is_active());
        assert_eq!(delayed.direct_net.delay_cycles, 400);
    }

    #[test]
    fn dashboard_and_report_render_a_real_run() {
        let pipeline = Pipeline::with_config(SystemConfig::paper_default());
        let bench = catalog::by_code("VA").unwrap();
        let (result, _) = pipeline.run_one_pulsed(
            &bench,
            InputSize::Small,
            Mode::DirectStore,
            NullTracer,
            PulseConfig::default(),
            &FaultPlan::default(),
        );
        let report = result.unwrap();
        let series = report.pulse.as_ref().unwrap();
        check_against_report(series, &report).unwrap();

        let dash = render_dashboard("VA small ds", series);
        assert!(dash.contains("sm_ops"), "{dash}");
        assert!(dash.contains("queue_depth"), "{dash}");
        let csv = render_csv(series);
        assert_eq!(csv.lines().count(), series.len() + 1);
        let rep = render_report("VA small ds", series);
        assert!(rep.contains("totals:"), "{rep}");
    }

    #[test]
    fn bit_identity_detects_a_perturbed_report() {
        let pipeline = Pipeline::with_config(SystemConfig::paper_default());
        let bench = catalog::by_code("VA").unwrap();
        let baseline = pipeline
            .run_one(&bench, InputSize::Small, Mode::DirectStore)
            .unwrap();
        let (result, _) = pipeline.run_one_pulsed(
            &bench,
            InputSize::Small,
            Mode::DirectStore,
            NullTracer,
            PulseConfig::default(),
            &FaultPlan::default(),
        );
        let pulsed = result.unwrap();
        check_bit_identity(&baseline, &pulsed).unwrap();

        let mut tampered = pulsed.clone();
        tampered.dram_reads += 1;
        assert!(check_bit_identity(&baseline, &tampered).is_err());
    }
}
