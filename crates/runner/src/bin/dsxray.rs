//! `dsxray` — per-transaction cycle accounting and stall attribution.
//!
//! Runs one benchmark under both CCSM and direct store with the
//! in-memory tracer attached, stitches the trace stream back into
//! per-transaction records, and prints a side-by-side stall stack:
//! for every lifecycle stage, how many cycles the mode's loads (and
//! pushes) spent there. Because stage intervals telescope, each
//! column's stage sum equals its end-to-end cycle total exactly —
//! the report prints both lines so the invariant is visible.
//!
//! ```text
//! dsxray --bench VA [--input small|big] [--top K] [--check]
//!        [--out FILE]
//! ```

use ds_core::{InputSize, Mode, Pipeline, RunReport, SystemConfig};
use ds_probe::{xray, BufferTracer, Stage, StageBreakdown, TxnPath};

const USAGE: &str = "usage: dsxray --bench CODE [options]

Runs one benchmark under both CCSM and direct store and prints a
side-by-side per-stage stall stack plus the slowest critical paths.

options:
  --bench CODE       Table II benchmark code (required), e.g. VA
  --input small|big  input size (default: small)
  --top K            critical paths to print per mode (default: 3)
  --check            verify the accounting invariants and exit
                     non-zero on any violation
  --out FILE         write the report to FILE instead of stdout
  --help             show this help";

struct Options {
    code: String,
    input: InputSize,
    top: usize,
    check: bool,
    out: Option<String>,
}

fn usage_error(message: &str) -> ! {
    eprintln!("dsxray: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut code = None;
    let mut opts = Options {
        code: String::new(),
        input: InputSize::Small,
        top: 3,
        check: false,
        out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--bench needs a value"));
                code = Some(v.clone());
            }
            "--input" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--input needs a value"));
                opts.input = match v.as_str() {
                    "small" => InputSize::Small,
                    "big" => InputSize::Big,
                    other => usage_error(&format!("unknown input size {other:?}")),
                };
            }
            "--top" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--top needs a value"));
                match v.parse::<usize>() {
                    Ok(n) => opts.top = n,
                    _ => usage_error(&format!("--top needs a non-negative integer, got {v:?}")),
                }
            }
            "--check" => opts.check = true,
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out needs a value"));
                opts.out = Some(v.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    opts.code = code.unwrap_or_else(|| usage_error("--bench is required"));
    opts
}

/// Everything `dsxray` derives from one instrumented run.
struct ModeView {
    report: RunReport,
    records: Vec<xray::TxnRecord>,
    stitched: StageBreakdown,
}

fn run_mode(code: &str, input: InputSize, mode: Mode) -> ModeView {
    let bench = ds_workloads::catalog::by_code(code).unwrap_or_else(|| {
        eprintln!("dsxray: unknown benchmark code {code:?} (see Table II)");
        std::process::exit(1);
    });
    let pipeline = Pipeline::with_config(SystemConfig::paper_default());
    let (report, tracer) = pipeline
        .run_one_instrumented(&bench, input, mode, BufferTracer::new(), None)
        .unwrap_or_else(|e| {
            eprintln!("dsxray: {e}");
            std::process::exit(1);
        });
    let records = xray::stitch(&tracer.into_events());
    let stitched = xray::breakdown(&records);
    ModeView {
        report,
        records,
        stitched,
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// One stall-stack table for `path`, the two modes side by side.
fn render_stack(out: &mut String, path: TxnPath, ccsm: &StageBreakdown, ds: &StageBreakdown) {
    let (title, ccsm_total, ds_total) = match path {
        TxnPath::GpuLoad => ("GPU load stall stack", ccsm.load_cycles, ds.load_cycles),
        TxnPath::Push => (
            "direct-store push stall stack",
            ccsm.push_cycles,
            ds.push_cycles,
        ),
    };
    out.push_str(&format!(
        "{title} (cycles, % of path total)\n{:16} {:>14} {:>6}   {:>14} {:>6}\n",
        "stage", "ccsm", "%", "ds", "%"
    ));
    for stage in Stage::ALL {
        if stage.path() != path {
            continue;
        }
        let (c, d) = (ccsm.stage_cycles(stage), ds.stage_cycles(stage));
        out.push_str(&format!(
            "{:16} {c:>14} {:>5.1}%   {d:>14} {:>5.1}%\n",
            stage.name(),
            pct(c, ccsm_total),
            pct(d, ds_total),
        ));
    }
    out.push_str(&format!(
        "{:16} {:>14}          {:>14}\n",
        "stage sum",
        ccsm.path_stage_sum(path),
        ds.path_stage_sum(path),
    ));
    out.push_str(&format!(
        "{:16} {:>14}          {:>14}\n\n",
        "end-to-end total", ccsm_total, ds_total,
    ));
}

/// The `k` slowest transactions of one mode, with their per-stage
/// critical path.
fn render_critical_paths(out: &mut String, label: &str, view: &ModeView, k: usize) {
    if k == 0 {
        return;
    }
    out.push_str(&format!("slowest transactions, {label}"));
    match xray::p99_threshold(&view.records, TxnPath::GpuLoad) {
        Some(p99) => out.push_str(&format!(" (load p99 >= {p99} cycles):\n")),
        None => out.push_str(":\n"),
    }
    for r in xray::slowest(&view.records, k) {
        // Coalesce consecutive same-stage segments (MSHR retries
        // re-enter their stage once per attempt) so the path reads as
        // one hop per stage visit.
        let mut merged: Vec<(Stage, u64)> = Vec::new();
        for (stage, cycles) in r.segments() {
            match merged.last_mut() {
                Some((last, sum)) if *last == stage => *sum += cycles,
                _ => merged.push((stage, cycles)),
            }
        }
        let segments: Vec<String> = merged
            .iter()
            .map(|(s, c)| format!("{} {c}", s.name()))
            .collect();
        out.push_str(&format!(
            "  txn {} ({}, {} cycles): {}\n",
            r.txn,
            r.path.name(),
            r.total(),
            segments.join(" -> "),
        ));
    }
    out.push('\n');
}

fn render(code: &str, input: InputSize, ccsm: &ModeView, ds: &ModeView, top: usize) -> String {
    let (cc, dc) = (
        ccsm.report.total_cycles.as_u64(),
        ds.report.total_cycles.as_u64(),
    );
    let speedup = if dc == 0 { 0.0 } else { cc as f64 / dc as f64 };
    let mut out = format!(
        "dsxray: {code} {input} — ccsm {cc} cycles, ds {dc} cycles, speedup {speedup:.3}\n\
         loads: ccsm {} / ds {}; pushes: ccsm {} / ds {}\n\n",
        ccsm.report.stages.loads,
        ds.report.stages.loads,
        ccsm.report.stages.pushes,
        ds.report.stages.pushes,
    );
    render_stack(
        &mut out,
        TxnPath::GpuLoad,
        &ccsm.report.stages,
        &ds.report.stages,
    );
    render_stack(
        &mut out,
        TxnPath::Push,
        &ccsm.report.stages,
        &ds.report.stages,
    );
    render_critical_paths(&mut out, "ccsm", ccsm, top);
    render_critical_paths(&mut out, "ds", ds, top);
    out
}

/// `--check` exit code for an empty trace: every invariant below holds
/// vacuously over zero transaction records, so an instrumented run
/// that recorded nothing must fail distinctly rather than "pass".
const EXIT_EMPTY_TRACE: i32 = 3;

/// True when neither mode's run produced any transaction records.
fn traces_are_empty(ccsm: &[xray::TxnRecord], ds: &[xray::TxnRecord]) -> bool {
    ccsm.is_empty() && ds.is_empty()
}

/// Verifies the accounting invariants for one mode's view; returns a
/// list of human-readable violations (empty means all hold).
fn check_view(label: &str, view: &ModeView) -> Vec<String> {
    let mut errs = Vec::new();
    for r in &view.records {
        // Marks must be monotone in cycle, and the per-segment cycles
        // must telescope to the end-to-end total.
        let mut prev = r.marks.first().map_or(0, |&(_, c)| c);
        for &(_, at) in &r.marks {
            if at < prev {
                errs.push(format!(
                    "{label}: txn {} has non-monotone stage marks",
                    r.txn
                ));
                break;
            }
            prev = at;
        }
        if r.end < prev {
            errs.push(format!(
                "{label}: txn {} completes before its last mark",
                r.txn
            ));
        }
        let seg_sum: u64 = r.segments().iter().map(|&(_, c)| c).sum();
        if seg_sum != r.total() {
            errs.push(format!(
                "{label}: txn {} segments sum to {seg_sum}, end-to-end is {}",
                r.txn,
                r.total()
            ));
        }
    }
    // The breakdown stitched from the trace must agree exactly with
    // the one the live tracker accumulated during the run.
    if view.stitched != view.report.stages {
        errs.push(format!(
            "{label}: stitched breakdown disagrees with the live tracker"
        ));
    }
    // Per-path stage sums telescope in aggregate, too.
    for (path, total) in [
        (TxnPath::GpuLoad, view.report.stages.load_cycles),
        (TxnPath::Push, view.report.stages.push_cycles),
    ] {
        let sum = view.report.stages.path_stage_sum(path);
        if sum != total {
            errs.push(format!(
                "{label}: {} stage sum {sum} != end-to-end total {total}",
                path.name()
            ));
        }
    }
    // Stage accounting and the latency histograms observe the same
    // loads: counts and cycle sums must agree.
    let loads = view.report.latency.load_to_use.samples();
    if view.report.stages.loads != loads {
        errs.push(format!(
            "{label}: {} load transactions but {loads} load_to_use samples",
            view.report.stages.loads
        ));
    }
    if u128::from(view.report.stages.load_cycles) != view.report.latency.load_to_use.sum() {
        errs.push(format!(
            "{label}: load cycle sum {} != load_to_use histogram sum {}",
            view.report.stages.load_cycles,
            view.report.latency.load_to_use.sum()
        ));
    }
    if view.report.stages.pushes != view.report.direct_pushes {
        errs.push(format!(
            "{label}: {} push transactions but {} direct pushes",
            view.report.stages.pushes, view.report.direct_pushes
        ));
    }
    errs
}

/// CCSM has no direct-store path: it must attribute zero cycles to
/// the push stages and route zero messages over the direct network.
fn check_ccsm_quiescence(view: &ModeView) -> Vec<String> {
    let mut errs = Vec::new();
    for stage in Stage::ALL {
        if stage.path() == TxnPath::Push && view.report.stages.stage_cycles(stage) != 0 {
            errs.push(format!(
                "ccsm: nonzero cycles attributed to push stage {}",
                stage.name()
            ));
        }
    }
    if view.report.stages.pushes != 0 {
        errs.push("ccsm: nonzero push transactions".into());
    }
    if view.report.direct_net.total_msgs() != 0 {
        errs.push("ccsm: direct network routed messages".into());
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);

    let ccsm = run_mode(&opts.code, opts.input, Mode::Ccsm);
    let ds = run_mode(&opts.code, opts.input, Mode::DirectStore);

    let text = render(&opts.code, opts.input, &ccsm, &ds, opts.top);

    if opts.check {
        if traces_are_empty(&ccsm.records, &ds.records) {
            eprintln!("dsxray: check failed: no transaction records in either mode (empty trace)");
            std::process::exit(EXIT_EMPTY_TRACE);
        }
        let mut errs = check_view("ccsm", &ccsm);
        errs.extend(check_view("ds", &ds));
        errs.extend(check_ccsm_quiescence(&ccsm));
        if !errs.is_empty() {
            for e in &errs {
                eprintln!("dsxray: check failed: {e}");
            }
            std::process::exit(1);
        }
        eprintln!("dsxray: all accounting invariants hold");
    }

    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("dsxray: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("dsxray: {} {} -> {path}", opts.code, opts.input);
        }
        None => print!("{text}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_detection_requires_both_modes_empty() {
        let none = xray::stitch(&[]);
        assert!(traces_are_empty(&none, &none));
        assert_eq!(
            EXIT_EMPTY_TRACE, 3,
            "distinct from failure (1) and usage (2)"
        );
    }

    #[test]
    fn one_nonempty_mode_is_not_an_empty_trace() {
        use ds_probe::{Component, Stage, TraceEvent, TraceKind};
        let events = vec![
            TraceEvent {
                cycle: 10,
                component: Component::GpuL1 { sm: 0 },
                line: Some(4),
                kind: TraceKind::StageMark {
                    txn: 1,
                    stage: Stage::SmL1,
                },
            },
            TraceEvent {
                cycle: 30,
                component: Component::GpuL1 { sm: 0 },
                line: Some(4),
                kind: TraceKind::TxnDone { txn: 1 },
            },
        ];
        let records = xray::stitch(&events);
        assert_eq!(records.len(), 1);
        assert!(!traces_are_empty(&records, &xray::stitch(&[])));
    }
}
