//! `dschaos` — deterministic fault injection for the memory system.
//!
//! Sweeps message-loss rates over a NoC (or DRAM stall rates over the
//! banks) per benchmark and reports how the direct-store protocol
//! held up: pushes attempted, retried, degraded to the demand path,
//! and total faults injected. Runs ride the hardened [`Runner`]
//! executor, so a panicking or watchdog-aborted simulation is a row
//! in the table, not a dead harness.
//!
//! ```text
//! dschaos [--bench VA,MM,...] [--input small|big] [--mode ds|ds-only]
//!         [--net direct|coh|gpu|dram] [--kind drop|dup|delay]
//!         [--rates N,N,...] [--seed S] [--jobs N] [--timeout SECS]
//!         [--format text|csv] [--quiet] [--check]
//! ```
//!
//! `--check` runs the invariant audit instead of a sweep:
//!
//! 1. **Zero-fault identity** — with an inactive [`FaultPlan`] the
//!    simulator must produce a bit-identical report to a plain run
//!    (the fault layer adds no events and consumes no randomness).
//! 2. **No silent loss** — under direct-network faults, every drained
//!    push is either acknowledged or degraded:
//!    `pushes_attempted == direct_pushes + pushes_degraded`.

use ds_core::Scenario as _;
use ds_core::{FaultPlan, InputSize, Mode, Pipeline, SystemConfig};
use ds_runner::{postmortem_path, Runner, Task, TaskOutcome};
use ds_workloads::catalog;
use std::path::Path;

/// Where sweep postmortems land, mirroring `dsrun --keep-going`.
const POSTMORTEM_DIR: &str = "results/postmortem";

const USAGE: &str = "usage: dschaos [options]

Sweeps deterministic fault injection over the memory system and
reports direct-store retry/degradation behavior per benchmark.

options:
  --bench A,B,...          only these Table II codes (default: all 22)
  --input small|big        input size (default: small)
  --mode ds|ds-only        direct-store variant under test (default: ds)
  --net direct|coh|gpu|dram  where to inject (default: direct)
  --kind drop|dup|delay    fault kind for NoC nets (default: drop)
  --rates N,N,...          per-65536 fault rates to sweep
                           (default: 0,64,256,1024,4096)
  --seed S                 fault-plan seed (default: 1)
  --jobs N                 worker threads (default: DS_RUNNER_JOBS or
                           the machine's available parallelism)
  --timeout SECS           per-run wall-clock budget (default: none)
  --format text|csv        output format on stdout (default: text)
  --quiet                  suppress per-job progress lines on stderr
  --check                  run the invariant audit instead of a sweep:
                           zero-fault bit-identity + no-silent-loss
  --help                   show this help";

#[derive(Clone, Copy, PartialEq)]
enum FaultNet {
    Direct,
    Coh,
    Gpu,
    Dram,
}

impl FaultNet {
    fn name(self) -> &'static str {
        match self {
            FaultNet::Direct => "direct",
            FaultNet::Coh => "coh",
            FaultNet::Gpu => "gpu",
            FaultNet::Dram => "dram",
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum FaultKind {
    Drop,
    Dup,
    Delay,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Dup => "dup",
            FaultKind::Delay => "delay",
        }
    }
}

#[derive(PartialEq)]
enum Format {
    Text,
    Csv,
}

struct Options {
    codes: Option<Vec<String>>,
    input: InputSize,
    ds_mode: Mode,
    net: FaultNet,
    kind: FaultKind,
    rates: Vec<u16>,
    seed: u64,
    jobs: Option<usize>,
    timeout: Option<u64>,
    format: Format,
    quiet: bool,
    check: bool,
}

fn usage_error(message: &str) -> ! {
    eprintln!("dschaos: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        codes: None,
        input: InputSize::Small,
        ds_mode: Mode::DirectStore,
        net: FaultNet::Direct,
        kind: FaultKind::Drop,
        rates: vec![0, 64, 256, 1024, 4096],
        seed: 1,
        jobs: None,
        timeout: None,
        format: Format::Text,
        quiet: false,
        check: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--bench needs a value"));
                opts.codes = Some(v.split(',').map(str::to_string).collect());
            }
            "--input" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--input needs a value"));
                opts.input = match v.as_str() {
                    "small" => InputSize::Small,
                    "big" => InputSize::Big,
                    other => usage_error(&format!("unknown input size {other:?}")),
                };
            }
            "--mode" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--mode needs a value"));
                opts.ds_mode = match v.as_str() {
                    "ds" => Mode::DirectStore,
                    "ds-only" => Mode::DirectStoreOnly,
                    other => usage_error(&format!("unknown mode {other:?}")),
                };
            }
            "--net" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--net needs a value"));
                opts.net = match v.as_str() {
                    "direct" => FaultNet::Direct,
                    "coh" => FaultNet::Coh,
                    "gpu" => FaultNet::Gpu,
                    "dram" => FaultNet::Dram,
                    other => usage_error(&format!("unknown net {other:?}")),
                };
            }
            "--kind" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--kind needs a value"));
                opts.kind = match v.as_str() {
                    "drop" => FaultKind::Drop,
                    "dup" => FaultKind::Dup,
                    "delay" => FaultKind::Delay,
                    other => usage_error(&format!("unknown fault kind {other:?}")),
                };
            }
            "--rates" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--rates needs a value"));
                opts.rates = v
                    .split(',')
                    .map(|r| {
                        r.parse::<u16>().unwrap_or_else(|_| {
                            usage_error(&format!("--rates needs integers in 0..=65535, got {r:?}"))
                        })
                    })
                    .collect();
            }
            "--seed" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--seed needs a value"));
                opts.seed = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--seed needs an integer, got {v:?}"))
                });
            }
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--jobs needs a value"));
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => opts.jobs = Some(n),
                    _ => usage_error(&format!("--jobs needs a positive integer, got {v:?}")),
                }
            }
            "--timeout" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--timeout needs a value"));
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.timeout = Some(n),
                    _ => usage_error(&format!("--timeout needs positive seconds, got {v:?}")),
                }
            }
            "--format" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--format needs a value"));
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "csv" => Format::Csv,
                    other => usage_error(&format!("unknown format {other:?}")),
                };
            }
            "--quiet" => opts.quiet = true,
            "--check" => opts.check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    opts
}

/// Builds the fault plan for one sweep point.
fn plan_for(opts: &Options, rate: u16) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: opts.seed,
        ..FaultPlan::default()
    };
    match opts.net {
        FaultNet::Dram => {
            plan.dram_stall_rate = rate;
            plan.dram_stall_cycles = 500;
        }
        net => {
            let rates = match net {
                FaultNet::Direct => &mut plan.direct_net,
                FaultNet::Coh => &mut plan.coh_net,
                FaultNet::Gpu => &mut plan.gpu_net,
                FaultNet::Dram => unreachable!(),
            };
            match opts.kind {
                FaultKind::Drop => rates.drop = rate,
                FaultKind::Dup => rates.dup = rate,
                FaultKind::Delay => {
                    rates.delay = rate;
                    rates.delay_cycles = 400;
                }
            }
        }
    }
    plan
}

fn selected_codes(opts: &Options) -> Vec<String> {
    let all: Vec<String> = catalog::all()
        .iter()
        .map(|b| b.code().to_string())
        .collect();
    match &opts.codes {
        None => all,
        Some(codes) => {
            for c in codes {
                if !all.iter().any(|a| a == c) {
                    eprintln!("dschaos: unknown benchmark code {c:?} (see Table II)");
                    std::process::exit(1);
                }
            }
            codes.clone()
        }
    }
}

fn outcome_cells(outcome: &TaskOutcome) -> (String, String) {
    match outcome.report() {
        Some(r) => (
            r.total_cycles.as_u64().to_string(),
            format!(
                "{},{},{},{},{}",
                r.pushes_attempted,
                r.direct_pushes,
                r.pushes_retried,
                r.pushes_degraded,
                r.faults_injected
            ),
        ),
        None => ("-".into(), "-,-,-,-,-".into()),
    }
}

fn run_sweep(opts: &Options, cfg: &SystemConfig) -> i32 {
    let codes = selected_codes(opts);
    let mut tasks = Vec::new();
    for code in &codes {
        for &rate in &opts.rates {
            tasks.push(
                Task::new(cfg, code, opts.input, opts.ds_mode).with_faults(plan_for(opts, rate)),
            );
        }
    }

    let mut runner = Runner::new()
        .progress(!opts.quiet)
        .with_postmortems(POSTMORTEM_DIR);
    if let Some(n) = opts.jobs {
        runner = runner.jobs(n);
    }
    if let Some(secs) = opts.timeout {
        runner = runner.task_timeout(std::time::Duration::from_secs(secs));
    }
    let outcomes = runner.run_tasks_outcomes(&tasks);

    if opts.format == Format::Csv {
        println!(
            "benchmark,input,mode,net,kind,rate,outcome,total_cycles,\
             pushes_attempted,direct_pushes,pushes_retried,pushes_degraded,faults_injected"
        );
    } else {
        println!(
            "{:<5} {:>6} {:<9} {:>12} {:>9} {:>8} {:>8} {:>9} {:>7}",
            "bench",
            "rate",
            "outcome",
            "cycles",
            "attempted",
            "acked",
            "retried",
            "degraded",
            "faults"
        );
    }
    let mut broken = 0usize;
    for (task, outcome) in tasks.iter().zip(&outcomes) {
        let rate = match opts.net {
            FaultNet::Dram => task.faults.dram_stall_rate,
            FaultNet::Direct => rate_of(&task.faults.direct_net, opts.kind),
            FaultNet::Coh => rate_of(&task.faults.coh_net, opts.kind),
            FaultNet::Gpu => rate_of(&task.faults.gpu_net, opts.kind),
        };
        match opts.format {
            Format::Csv => {
                let (cycles, counters) = outcome_cells(outcome);
                println!(
                    "{},{},{},{},{},{},{},{},{}",
                    task.code,
                    task.input,
                    task.mode,
                    opts.net.name(),
                    if opts.net == FaultNet::Dram {
                        "stall"
                    } else {
                        opts.kind.name()
                    },
                    rate,
                    outcome.tag(),
                    cycles,
                    counters
                );
            }
            Format::Text => match outcome.report() {
                Some(r) => {
                    println!(
                        "{:<5} {:>6} {:<9} {:>12} {:>9} {:>8} {:>8} {:>9} {:>7}",
                        task.code,
                        rate,
                        outcome.tag(),
                        r.total_cycles.as_u64(),
                        r.pushes_attempted,
                        r.direct_pushes,
                        r.pushes_retried,
                        r.pushes_degraded,
                        r.faults_injected
                    );
                    if matches!(outcome, TaskOutcome::Degraded(_)) {
                        eprintln!(
                            "dschaos: {} rate {}: degraded (postmortem: {})",
                            task.code,
                            rate,
                            postmortem_path(Path::new(POSTMORTEM_DIR), task).display()
                        );
                    }
                }
                None => {
                    let detail = match outcome {
                        TaskOutcome::Panicked(msg) => format!("panicked: {msg}"),
                        TaskOutcome::TimedOut => "timed out".into(),
                        TaskOutcome::Failed(msg) => msg.clone(),
                        _ => unreachable!("report-less outcomes only"),
                    };
                    // Diagnostics are multi-line; keep the table row
                    // short and put the detail on stderr.
                    println!(
                        "{:<5} {:>6} {:<9} (no report)",
                        task.code,
                        rate,
                        outcome.tag()
                    );
                    eprintln!(
                        "dschaos: {} rate {}: {} (postmortem: {})",
                        task.code,
                        rate,
                        detail,
                        postmortem_path(Path::new(POSTMORTEM_DIR), task).display()
                    );
                }
            },
        }
        if outcome.report().is_none() {
            broken += 1;
        }
    }
    if broken > 0 {
        eprintln!("dschaos: {broken} run(s) produced no report");
        1
    } else {
        0
    }
}

fn rate_of(rates: &ds_core::NetFaultRates, kind: FaultKind) -> u16 {
    match kind {
        FaultKind::Drop => rates.drop,
        FaultKind::Dup => rates.dup,
        FaultKind::Delay => rates.delay,
    }
}

/// The `--check` audit. Returns the process exit code.
fn run_check(opts: &Options, cfg: &SystemConfig) -> i32 {
    let codes = selected_codes(opts);
    let pipeline = Pipeline::with_config(cfg.clone());
    let mut failures = 0usize;

    for code in &codes {
        let bench = catalog::by_code(code).expect("codes come from the catalog");

        // 1. Zero-fault identity: an inactive plan must not perturb
        // the simulation in any observable way.
        for mode in [Mode::Ccsm, opts.ds_mode] {
            let plain = pipeline.run_one(&bench, opts.input, mode);
            let faulted = pipeline.run_one_faulted(&bench, opts.input, mode, &FaultPlan::default());
            match (&plain, &faulted) {
                (Ok(a), Ok(b)) if format!("{a:?}") == format!("{b:?}") => {}
                (Ok(_), Ok(_)) => {
                    eprintln!("dschaos: FAIL {code} {mode}: inactive plan changed the report");
                    failures += 1;
                }
                (a, b) => {
                    eprintln!(
                        "dschaos: FAIL {code} {mode}: run errored (plain ok={}, faulted ok={})",
                        a.is_ok(),
                        b.is_ok()
                    );
                    failures += 1;
                }
            }
        }

        // 2. No silent loss under direct-network faults: every drained
        // push must be acknowledged or degraded, never vanish. Delay
        // beyond the ack timeout forces retries (and the duplicates
        // they imply) on every benchmark while keeping the run
        // completable — drops can also sever CPU demand-load replies,
        // which only the watchdog can resolve (see the sweep mode).
        let mut plan = FaultPlan {
            seed: opts.seed,
            ..FaultPlan::default()
        };
        plan.direct_net.delay = 8192;
        plan.direct_net.delay_cycles = 400;
        plan.direct_net.dup = 1024;
        match pipeline.run_one_faulted(&bench, opts.input, opts.ds_mode, &plan) {
            Ok(r) => {
                if r.pushes_attempted != r.direct_pushes + r.pushes_degraded {
                    eprintln!(
                        "dschaos: FAIL {code}: silent push loss \
                         (attempted {} != acked {} + degraded {})",
                        r.pushes_attempted, r.direct_pushes, r.pushes_degraded
                    );
                    failures += 1;
                } else if !opts.quiet {
                    eprintln!(
                        "dschaos: ok {code}: attempted {} = acked {} + degraded {} \
                         ({} retries, {} faults)",
                        r.pushes_attempted,
                        r.direct_pushes,
                        r.pushes_degraded,
                        r.pushes_retried,
                        r.faults_injected
                    );
                }
            }
            Err(e) => {
                eprintln!("dschaos: FAIL {code}: faulted run errored: {e}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("dschaos: check FAILED ({failures} violation(s))");
        1
    } else {
        println!(
            "dschaos: check passed for {} benchmark(s): zero-fault identity + no silent loss",
            codes.len()
        );
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);
    let cfg = SystemConfig::paper_default();
    let code = if opts.check {
        run_check(&opts, &cfg)
    } else {
        run_sweep(&opts, &cfg)
    };
    std::process::exit(code);
}
