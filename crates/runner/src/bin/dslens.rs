//! `dslens` — per-cacheline coherence forensics and push efficacy.
//!
//! Runs one benchmark under both CCSM and direct store with the line
//! lens attached and reports what became of every pushed line: the
//! useful / dead / clobbered efficacy partition (reconciled exactly
//! against the caches' `pushed_fills` counter), per-line sharing
//! pathologies (write-after-push, ping-pong), and spatial traffic
//! heatmaps over L2 slices, DRAM banks and NoC links.
//!
//! ```text
//! dslens --bench VA [--input small|big] [--top K]
//!        [--format text|csv] [--check] [--out FILE]
//! dslens --check            # sweep every Table II benchmark
//! ```

use ds_core::{InputSize, Mode, Pipeline, RunReport, Scenario, SystemConfig};
use ds_probe::{LensReport, LineHistory, LineLens, NetId, NullTracer, SliceTraffic};

const USAGE: &str = "usage: dslens [--bench CODE] [options]

Runs one benchmark under both CCSM and direct store and prints
per-cacheline push efficacy, sharing forensics and spatial traffic
heatmaps. With --check and no --bench, sweeps every Table II
benchmark verifying the reconciliation identities.

options:
  --bench CODE       Table II benchmark code, e.g. VA (required
                     unless --check sweeps the whole catalog)
  --input small|big  input size (default: small)
  --top K            forensic lines to print per mode (default: 5)
  --format text|csv  report format (default: text); csv emits the
                     three heatmap matrices as CSV tables
  --check            verify the reconciliation identities and exit
                     non-zero on any violation
  --out FILE         write the report to FILE instead of stdout
  --help             show this help";

/// Intensity ramp for ASCII heatmaps, dimmest to hottest.
const RAMP: &[u8] = b" .:-=+*#%@";

struct Options {
    code: Option<String>,
    input: InputSize,
    top: usize,
    csv: bool,
    check: bool,
    out: Option<String>,
}

fn usage_error(message: &str) -> ! {
    eprintln!("dslens: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Options {
    let mut opts = Options {
        code: None,
        input: InputSize::Small,
        top: 5,
        csv: false,
        check: false,
        out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--bench needs a value"));
                opts.code = Some(v.clone());
            }
            "--input" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--input needs a value"));
                opts.input = match v.as_str() {
                    "small" => InputSize::Small,
                    "big" => InputSize::Big,
                    other => usage_error(&format!("unknown input size {other:?}")),
                };
            }
            "--top" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--top needs a value"));
                match v.parse::<usize>() {
                    Ok(n) => opts.top = n,
                    _ => usage_error(&format!("--top needs a non-negative integer, got {v:?}")),
                }
            }
            "--format" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--format needs a value"));
                opts.csv = match v.as_str() {
                    "text" => false,
                    "csv" => true,
                    other => usage_error(&format!("unknown format {other:?}")),
                };
            }
            "--check" => opts.check = true,
            "--out" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out needs a value"));
                opts.out = Some(v.clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if opts.code.is_none() && !opts.check {
        usage_error("--bench is required (or pass --check to sweep the catalog)");
    }
    opts
}

/// Everything `dslens` derives from one lensed run.
struct ModeView {
    report: RunReport,
    lens: LineLens,
}

fn run_mode(code: &str, input: InputSize, mode: Mode) -> ModeView {
    let bench = ds_workloads::catalog::by_code(code).unwrap_or_else(|| {
        eprintln!("dslens: unknown benchmark code {code:?} (see Table II)");
        std::process::exit(1);
    });
    let pipeline = Pipeline::with_config(SystemConfig::paper_default());
    let (report, _, lens) = pipeline
        .run_one_lensed(&bench, input, mode, NullTracer, None)
        .unwrap_or_else(|e| {
            eprintln!("dslens: {e}");
            std::process::exit(1);
        });
    ModeView { report, lens }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// One intensity character for `value` on a 0..=max scale.
fn heat(value: u64, max: u64) -> char {
    if max == 0 {
        return RAMP[0] as char;
    }
    let idx = (value as u128 * (RAMP.len() - 1) as u128).div_ceil(max as u128);
    RAMP[idx as usize] as char
}

fn p(h: &ds_sim::Histogram, q: f64) -> u64 {
    h.percentile(q).unwrap_or(0)
}

fn render_efficacy(out: &mut String, label: &str, view: &ModeView) {
    let r = &view.report;
    let l = &r.lens;
    let installed = r.gpu_l2.pushed_fills.value();
    out.push_str(&format!(
        "push efficacy ({label})\n\
         {:22} {:>10}   (= pushed_fills)\n",
        "installed pushes", installed
    ));
    for (name, n, note) in [
        ("useful", l.push_useful, "GPU touched before loss"),
        ("dead", l.push_dead, "lost untouched"),
        ("clobbered", l.push_clobbered, "re-pushed before use"),
    ] {
        out.push_str(&format!(
            "  {name:20} {n:>10}   {:>5.1}%  ({note})\n",
            pct(n, installed)
        ));
    }
    out.push_str(&format!(
        "{:22} {:>10}   (set full, to DRAM)\n\
         {:22} {:>10}   (retries exhausted, to DRAM home)\n\
         {:22} {:>10}   (= direct_pushes = installed + bypassed)\n\
         {:22} {:>10}   (useful first touches + re-hits)\n\
         {:22} {:>10} / {} cycles\n\n",
        "bypassed pushes",
        l.push_bypasses,
        "degraded pushes",
        l.push_degraded,
        "drained pushes",
        r.direct_pushes,
        "push hits",
        r.gpu_l2.push_hits.value(),
        "first touch p50/p99",
        p(&l.first_touch, 50.0),
        p(&l.first_touch, 99.0),
    ));
}

fn render_forensics(out: &mut String, label: &str, view: &ModeView, top: usize) {
    let l = &view.report.lens;
    out.push_str(&format!(
        "sharing forensics ({label})\n\
         {:22} {:>10} / {}\n\
         {:22} {:>10}   (first GPU touch was a store)\n\
         {:22} {:>10}   (CPU re-claimed a used push)\n\
         {:22} {:>10} / {} cycles (GPU L2-level)\n",
        "lines touched/pushed",
        l.lines_touched,
        l.lines_pushed,
        "write-after-push",
        l.write_after_push,
        "ping-pongs",
        l.ping_pongs,
        "reuse dist p50/p99",
        p(&l.reuse, 50.0),
        p(&l.reuse, 99.0),
    ));
    // The hottest histories: most-pushed lines first (most-accessed as
    // the no-push tiebreak), line index breaking ties for determinism.
    let mut lines: Vec<(u64, &LineHistory)> = view.lens.lines().collect();
    lines.sort_by(|a, b| {
        (b.1.pushes, b.1.gpu_accesses, a.0).cmp(&(a.1.pushes, a.1.gpu_accesses, b.0))
    });
    let k = top.min(lines.len());
    if k > 0 {
        out.push_str("  hottest lines:\n");
    }
    for &(line, h) in lines.iter().take(k) {
        out.push_str(&format!(
            "    line {line:#08x}: {} pushes ({} useful, {} dead, {} clobbered), \
             {} gpu accesses, {} ping-pongs\n",
            h.pushes, h.useful, h.dead, h.clobbered, h.gpu_accesses, h.ping_pongs
        ));
        let trail: Vec<String> = h
            .events
            .iter()
            .take(8)
            .map(|e| format!("{}@{}", e.kind.name(), e.cycle))
            .collect();
        let more = if h.events.len() > 8 { " ..." } else { "" };
        out.push_str(&format!("      {}{more}\n", trail.join(" ")));
    }
    out.push('\n');
}

fn render_heatmaps(out: &mut String, label: &str, lens: &LensReport) {
    // L2 slices: numeric table plus a heat bar over total traffic.
    out.push_str(&format!("L2 slice traffic ({label})\n  {:5}", "slice"));
    for col in SliceTraffic::COLUMNS {
        out.push_str(&format!(" {col:>13}"));
    }
    out.push_str("  heat\n");
    let max_slice = lens
        .slices
        .iter()
        .map(|s| s.hits + s.misses)
        .max()
        .unwrap_or(0);
    for (i, s) in lens.slices.iter().enumerate() {
        out.push_str(&format!("  {i:<5}"));
        for v in s.row() {
            out.push_str(&format!(" {v:>13}"));
        }
        out.push_str(&format!("  {}\n", heat(s.hits + s.misses, max_slice)));
    }
    // DRAM banks: one intensity character per bank.
    let max_bank = lens.banks.iter().map(|b| b.total()).max().unwrap_or(0);
    let strip: String = lens
        .banks
        .iter()
        .map(|b| heat(b.total(), max_bank))
        .collect();
    let (reads, writes, row_hits) = lens.banks.iter().fold((0u64, 0u64, 0u64), |(r, w, h), b| {
        (r + b.reads, w + b.writes, h + b.row_hits)
    });
    out.push_str(&format!(
        "DRAM bank heat ({label}, {} banks, hottest {})\n  [{strip}]  \
         reads={reads} writes={writes} row_hits={row_hits}\n",
        lens.banks.len(),
        max_bank
    ));
    // NoC links: one src x dst intensity matrix per network.
    out.push_str(&format!("NoC link heat ({label})\n"));
    for net in [NetId::Coherence, NetId::Direct, NetId::GpuInternal] {
        let links: Vec<_> = lens.links.iter().filter(|l| l.net == net).collect();
        let (control, data) = lens.net_sums(net);
        if links.is_empty() {
            out.push_str(&format!("  {}: no traffic\n", net.name()));
            continue;
        }
        let ports = 1 + links.iter().map(|l| l.src.max(l.dst)).max().unwrap_or(0) as usize;
        let max_link = links.iter().map(|l| l.total()).max().unwrap_or(0);
        out.push_str(&format!(
            "  {} (rows src, cols dst; {control} control + {data} data msgs)\n",
            net.name()
        ));
        for src in 0..ports {
            let row: String = (0..ports)
                .map(|dst| {
                    let total = links
                        .iter()
                        .filter(|l| l.src as usize == src && l.dst as usize == dst)
                        .map(|l| l.total())
                        .sum::<u64>();
                    heat(total, max_link)
                })
                .collect();
            out.push_str(&format!("    {src:>2} [{row}]\n"));
        }
    }
    out.push('\n');
}

fn render_text(code: &str, input: InputSize, ccsm: &ModeView, ds: &ModeView, top: usize) -> String {
    let (cc, dc) = (
        ccsm.report.total_cycles.as_u64(),
        ds.report.total_cycles.as_u64(),
    );
    let speedup = if dc == 0 { 0.0 } else { cc as f64 / dc as f64 };
    let mut out = format!(
        "dslens: {code} {input} — ccsm {cc} cycles, ds {dc} cycles, speedup {speedup:.3}\n\n"
    );
    render_efficacy(&mut out, "ds", ds);
    render_forensics(&mut out, "ds", ds, top);
    render_heatmaps(&mut out, "ds", &ds.report.lens);
    out.push_str(&format!(
        "ccsm baseline: {} pushes (must be 0), {} lines touched\n",
        ccsm.report.lens.push_total() + ccsm.report.lens.push_bypasses,
        ccsm.report.lens.lines_touched
    ));
    render_heatmaps(&mut out, "ccsm", &ccsm.report.lens);
    out
}

/// The three heatmap matrices as CSV tables, both modes stacked.
fn render_csv(views: &[(&str, &ModeView)]) -> String {
    let mut out = String::from("mode,slice,");
    out.push_str(&SliceTraffic::COLUMNS.join(","));
    out.push('\n');
    for (label, v) in views {
        for (i, s) in v.report.lens.slices.iter().enumerate() {
            let row: Vec<String> = s.row().iter().map(u64::to_string).collect();
            out.push_str(&format!("{label},{i},{}\n", row.join(",")));
        }
    }
    out.push_str("\nmode,bank,reads,writes,row_hits\n");
    for (label, v) in views {
        for (i, b) in v.report.lens.banks.iter().enumerate() {
            out.push_str(&format!(
                "{label},{i},{},{},{}\n",
                b.reads, b.writes, b.row_hits
            ));
        }
    }
    out.push_str("\nmode,net,src,dst,control,data\n");
    for (label, v) in views {
        for l in &v.report.lens.links {
            out.push_str(&format!(
                "{label},{},{},{},{},{}\n",
                l.net.name(),
                l.src,
                l.dst,
                l.control,
                l.data
            ));
        }
    }
    out
}

/// Verifies the lens reconciliation identities for one mode's run;
/// returns human-readable violations (empty means all hold).
fn check_view(label: &str, view: &ModeView) -> Vec<String> {
    let mut errs = Vec::new();
    let r = &view.report;
    let l = &r.lens;
    let mut check = |ok: bool, msg: String| {
        if !ok {
            errs.push(format!("{label}: {msg}"));
        }
    };
    let installed = r.gpu_l2.pushed_fills.value();
    check(
        l.push_total() == installed,
        format!(
            "useful {} + dead {} + clobbered {} != pushed_fills {installed}",
            l.push_useful, l.push_dead, l.push_clobbered
        ),
    );
    check(
        l.push_bypasses == r.push_bypasses,
        format!(
            "lens bypasses {} != runtime bypasses {}",
            l.push_bypasses, r.push_bypasses
        ),
    );
    check(
        l.push_degraded == r.pushes_degraded,
        format!(
            "lens degraded {} != runtime degraded {}",
            l.push_degraded, r.pushes_degraded
        ),
    );
    check(
        installed + l.push_bypasses == r.direct_pushes,
        format!(
            "installed {installed} + bypassed {} != drained pushes {}",
            l.push_bypasses, r.direct_pushes
        ),
    );
    check(
        l.first_touch.samples() == l.push_useful,
        format!(
            "{} first-touch samples for {} useful pushes",
            l.first_touch.samples(),
            l.push_useful
        ),
    );
    check(
        l.push_useful <= r.gpu_l2.push_hits.value(),
        format!(
            "useful {} exceeds push hits {}",
            l.push_useful,
            r.gpu_l2.push_hits.value()
        ),
    );
    // Heatmap row sums reconcile against the aggregate counters.
    let sums = l.slices.iter().fold([0u64; 9], |mut acc, s| {
        for (a, v) in acc.iter_mut().zip(s.row()) {
            *a += v;
        }
        acc
    });
    for (col, lens_sum, counter) in [
        ("hits", sums[0], r.gpu_l2.hits.value()),
        ("misses", sums[1], r.gpu_l2.misses.value()),
        ("push_fills", sums[3], r.gpu_l2.pushed_fills.value()),
        ("push_hits", sums[4], r.gpu_l2.push_hits.value()),
        ("evictions", sums[6], r.gpu_l2.evictions.value()),
        ("writebacks", sums[7], r.gpu_l2.writebacks.value()),
    ] {
        check(
            lens_sum == counter,
            format!("slice {col} sum {lens_sum} != gpu_l2 counter {counter}"),
        );
    }
    let (reads, writes, row_hits) = l.banks.iter().fold((0u64, 0u64, 0u64), |(rd, w, h), b| {
        (rd + b.reads, w + b.writes, h + b.row_hits)
    });
    check(
        reads == r.dram_reads,
        format!("bank read sum {reads} != dram_reads {}", r.dram_reads),
    );
    check(
        writes == r.dram_writes,
        format!("bank write sum {writes} != dram_writes {}", r.dram_writes),
    );
    check(
        row_hits == r.dram_row_hits,
        format!(
            "bank row-hit sum {row_hits} != dram_row_hits {}",
            r.dram_row_hits
        ),
    );
    for (net, xbar) in [
        (NetId::Coherence, &r.coh_net),
        (NetId::Direct, &r.direct_net),
        (NetId::GpuInternal, &r.gpu_net),
    ] {
        let (control, data) = l.net_sums(net);
        check(
            control == xbar.control_msgs && data == xbar.data_msgs,
            format!(
                "{} link sums ({control}, {data}) != xbar ({}, {})",
                net.name(),
                xbar.control_msgs,
                xbar.data_msgs
            ),
        );
    }
    check(l.lines_touched > 0, "run touched no lines".into());
    errs
}

/// CCSM has no direct-store path: the lens must contain zero push
/// records of any kind.
fn check_ccsm_quiescence(view: &ModeView) -> Vec<String> {
    let mut errs = Vec::new();
    let l = &view.report.lens;
    if l.push_total() != 0 || l.push_bypasses != 0 || l.push_degraded != 0 {
        errs.push(format!(
            "ccsm: nonzero push records (partition {}, bypasses {}, degraded {})",
            l.push_total(),
            l.push_bypasses,
            l.push_degraded
        ));
    }
    if l.lines_pushed != 0 {
        errs.push(format!("ccsm: {} lines marked pushed", l.lines_pushed));
    }
    if l.net_sums(NetId::Direct) != (0, 0) {
        errs.push("ccsm: direct-network links carried traffic".into());
    }
    if view.lens.lines().any(|(_, h)| h.pushes > 0) {
        errs.push("ccsm: a line history records a push".into());
    }
    errs
}

fn check_bench(code: &str, input: InputSize) -> Vec<String> {
    let ccsm = run_mode(code, input, Mode::Ccsm);
    let ds = run_mode(code, input, Mode::DirectStore);
    let mut errs: Vec<String> = check_view(&format!("{code} ccsm"), &ccsm);
    errs.extend(check_view(&format!("{code} ds"), &ds));
    errs.extend(
        check_ccsm_quiescence(&ccsm)
            .into_iter()
            .map(|e| format!("{code} {e}")),
    );
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_options(&args);

    if opts.check && opts.code.is_none() {
        // Catalog sweep: reconciliation must hold on every workload.
        let mut failed = false;
        for bench in ds_workloads::catalog::all() {
            let errs = check_bench(bench.code(), opts.input);
            if errs.is_empty() {
                eprintln!("dslens: {:4} reconciles", bench.code());
            } else {
                failed = true;
                for e in &errs {
                    eprintln!("dslens: check failed: {e}");
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("dslens: all lens identities hold on every workload");
        return;
    }

    let code = opts.code.as_deref().expect("checked by parse_options");
    let ccsm = run_mode(code, opts.input, Mode::Ccsm);
    let ds = run_mode(code, opts.input, Mode::DirectStore);

    if opts.check {
        let mut errs = check_view("ccsm", &ccsm);
        errs.extend(check_view("ds", &ds));
        errs.extend(check_ccsm_quiescence(&ccsm));
        if !errs.is_empty() {
            for e in &errs {
                eprintln!("dslens: check failed: {e}");
            }
            std::process::exit(1);
        }
        eprintln!("dslens: all lens identities hold");
    }

    let text = if opts.csv {
        render_csv(&[("CCSM", &ccsm), ("DS", &ds)])
    } else {
        render_text(code, opts.input, &ccsm, &ds, opts.top)
    };

    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("dslens: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("dslens: {code} {} -> {path}", opts.input);
        }
        None => print!("{text}"),
    }
}
