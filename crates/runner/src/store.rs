//! The result store: an in-process memo plus an opt-in on-disk JSON
//! cache.
//!
//! The memo shares results between figures inside one process (e.g.
//! `dsrun --format csv` after a sweep re-simulates nothing). The disk
//! cache extends that across processes: one file per configuration
//! fingerprint under the cache directory (`results/` by convention),
//! named `ds-runner-cache-<fingerprint>.json`. Invalidation is by
//! fingerprint: any config edit changes the fingerprint, pointing at a
//! different (initially absent) file; stale files are simply never
//! read again. A file whose recorded fingerprint disagrees with its
//! name — hand-edited or corrupt — is ignored and later overwritten.
//! Writes are atomic (temp file + rename), so concurrent readers —
//! other worker threads or whole other processes sharing `results/` —
//! never observe a torn file.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

use ds_core::{InputSize, Mode, RunReport, SystemConfig};

use crate::job::TaskKey;
use crate::json::{self, Json};
use crate::report::{mode_name, parse_input, parse_mode, report_from_json, report_to_json};

/// On-disk cache format version; bump on schema changes to orphan old
/// files. Version 2 added latency histograms and epoch series to the
/// per-run report; version 3 added the per-stage cycle breakdown;
/// version 4 added the per-cacheline lens (push efficacy, sharing
/// forensics, spatial heatmaps); version 5 added the ds-chaos fault
/// and degradation counters (`pushes_attempted`, `pushes_retried`,
/// `pushes_degraded`, `faults_injected`, lens `push_degraded`);
/// version 6 added the optional `host` profile (ds-prof host-time
/// self-accounting); version 7 added the optional `scope` span tree
/// (ds-scope correlated span tracing); version 8 added the optional
/// `pulse` time-series telemetry (ds-pulse windowed counters, gauges
/// and anomaly annotations).
const FORMAT_VERSION: u64 = 8;

/// Memo + optional disk cache, keyed by [`TaskKey`].
#[derive(Debug, Default)]
pub struct ResultStore {
    memo: HashMap<TaskKey, RunReport>,
    disk_dir: Option<PathBuf>,
    /// Fingerprints whose cache file has already been read this
    /// process (whether or not it existed).
    loaded: HashSet<u64>,
}

impl ResultStore {
    /// An empty, memory-only store.
    pub fn new() -> Self {
        ResultStore::default()
    }

    /// Enables the on-disk cache under `dir` (created on first write).
    pub fn enable_disk(&mut self, dir: impl Into<PathBuf>) {
        self.disk_dir = Some(dir.into());
        self.loaded.clear();
    }

    /// Whether the disk cache is enabled.
    pub fn disk_enabled(&self) -> bool {
        self.disk_dir.is_some()
    }

    /// Looks up a result, consulting (and lazily loading) the disk
    /// cache for the key's fingerprint.
    pub fn get(&mut self, key: &TaskKey) -> Option<&RunReport> {
        self.ensure_loaded(key.fingerprint);
        self.memo.get(key)
    }

    /// Records a freshly computed result.
    pub fn insert(&mut self, key: TaskKey, report: RunReport) {
        self.memo.insert(key, report);
    }

    /// Number of memoized results.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    fn cache_path(dir: &Path, fingerprint: u64) -> PathBuf {
        dir.join(format!("ds-runner-cache-{fingerprint:016x}.json"))
    }

    fn ensure_loaded(&mut self, fingerprint: u64) {
        let Some(dir) = &self.disk_dir else { return };
        if !self.loaded.insert(fingerprint) {
            return;
        }
        let path = Self::cache_path(dir, fingerprint);
        let Ok(bytes) = std::fs::read(&path) else {
            return; // no cache file yet
        };
        let parsed = String::from_utf8(bytes)
            .map_err(|_| "not UTF-8".to_string())
            .and_then(|text| parse_cache_file(&text, fingerprint));
        match parsed {
            Ok(entries) => {
                for (key, mut report) in entries {
                    // Span trees are host-time artifacts of the run
                    // that produced the cache file. A scope-disabled
                    // consumer must see reports bit-identical to a
                    // scope-less run regardless of cache history, so
                    // the stale tree is shed on load (mirroring the
                    // probe-level persist discipline).
                    if !ds_probe::scope::enabled() {
                        report.scope = None;
                    }
                    self.memo.entry(key).or_insert(report);
                }
            }
            Err(reason) => {
                let quarantined = Self::quarantine(dir, &path);
                match quarantined {
                    Some(dest) => eprintln!(
                        "ds-runner: quarantined corrupt cache file {} -> {} ({reason})",
                        path.display(),
                        dest.display()
                    ),
                    None => eprintln!(
                        "ds-runner: ignoring corrupt cache file {} ({reason}; \
                         quarantine failed, file left in place)",
                        path.display()
                    ),
                }
            }
        }
    }

    /// Moves a corrupt cache file into `<dir>/quarantine/` so it stops
    /// shadowing the slot (the task re-runs and re-persists cleanly)
    /// while staying available for post-mortem inspection. Returns the
    /// destination path, or `None` if the move failed.
    fn quarantine(dir: &Path, path: &Path) -> Option<PathBuf> {
        let qdir = dir.join("quarantine");
        std::fs::create_dir_all(&qdir).ok()?;
        let name = path.file_name()?;
        let dest = qdir.join(name);
        std::fs::rename(path, &dest).ok()?;
        Some(dest)
    }

    /// Writes every memoized result for `fingerprint` to its cache
    /// file. `config` is the configuration the fingerprint names,
    /// recorded for human inspection.
    ///
    /// Best-effort: IO failures are reported on stderr, not fatal — a
    /// missing cache only costs re-simulation.
    pub fn persist(&self, fingerprint: u64, config: &SystemConfig) {
        let Some(dir) = &self.disk_dir else { return };
        // Reports produced at a shed probe level (`--probe-level
        // stages|minimal`) carry empty stage/lens sections; persisting
        // them would poison the shared cache for full-probe consumers.
        // The simulated metrics are identical across levels, so the
        // skipped write costs only a re-simulation at full level.
        if ds_probe::prof::level() != ds_probe::ProbeLevel::Full {
            return;
        }
        // Faulted (`fault_fp != 0`) and pulsed (`pulse != 0`) results
        // are deliberately never persisted: the cache file schema
        // identifies entries by (code, input, mode) only, and both are
        // cheap, exploratory runs whose extra payloads would bloat the
        // cache.
        let mut entries: Vec<(&TaskKey, &RunReport)> = self
            .memo
            .iter()
            .filter(|(k, _)| k.fingerprint == fingerprint && k.fault_fp == 0 && k.pulse == 0)
            .collect();
        entries.sort_by_key(|(k, _)| (k.code.clone(), rank_input(k.input), rank_mode(k.mode)));
        let doc = Json::Obj(vec![
            ("format".into(), Json::Int(FORMAT_VERSION)),
            (
                "fingerprint".into(),
                Json::Str(format!("{fingerprint:016x}")),
            ),
            ("config".into(), Json::Str(format!("{config:?}"))),
            (
                "entries".into(),
                Json::Arr(
                    entries
                        .iter()
                        .map(|(k, r)| {
                            Json::Obj(vec![
                                ("code".into(), Json::Str(k.code.clone())),
                                ("input".into(), Json::Str(k.input.to_string())),
                                ("mode".into(), Json::Str(mode_name(k.mode))),
                                ("report".into(), report_to_json(r)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("ds-runner: cannot create cache dir {}: {e}", dir.display());
            return;
        }
        let path = Self::cache_path(dir, fingerprint);
        if let Err(e) = write_atomic(dir, &path, doc.pretty().as_bytes()) {
            eprintln!("ds-runner: cannot write cache {}: {e}", path.display());
        }
    }
}

/// Writes `bytes` to `path` atomically: the content lands in a
/// uniquely named temp file in the same directory and is `rename`d
/// into place, so a concurrent reader sees either the old file or the
/// new one — never a torn prefix for the quarantine path to eat. The
/// temp name carries the pid and a process-wide counter so concurrent
/// writers (threads or processes) never share one. Public so the
/// postmortem dumper shares the same torn-write guarantee.
///
/// # Errors
///
/// Propagates the underlying write or rename failure.
pub fn write_atomic(dir: &Path, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("cache");
    let tmp = dir.join(format!(
        ".{name}.tmp-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

fn rank_input(input: InputSize) -> u8 {
    match input {
        InputSize::Small => 0,
        InputSize::Big => 1,
    }
}

fn rank_mode(mode: Mode) -> u8 {
    match mode {
        Mode::Ccsm => 0,
        Mode::DirectStore => 1,
        Mode::DirectStoreOnly => 2,
    }
}

fn parse_cache_file(
    text: &str,
    expected_fingerprint: u64,
) -> Result<Vec<(TaskKey, RunReport)>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("format").and_then(Json::as_u64) != Some(FORMAT_VERSION) {
        return Err("unsupported format version".into());
    }
    let recorded = doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("missing fingerprint")?;
    if recorded != expected_fingerprint {
        return Err(format!(
            "fingerprint mismatch: file says {recorded:016x}, name says {expected_fingerprint:016x}"
        ));
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing entries")?;
    entries
        .iter()
        .map(|entry| {
            let code = entry
                .get("code")
                .and_then(Json::as_str)
                .ok_or("entry missing code")?
                .to_string();
            let input = entry
                .get("input")
                .and_then(Json::as_str)
                .and_then(parse_input)
                .ok_or("entry missing input")?;
            let mode = entry
                .get("mode")
                .and_then(Json::as_str)
                .and_then(parse_mode)
                .ok_or("entry missing mode")?;
            let report = report_from_json(entry.get("report").ok_or("entry missing report")?)?;
            Ok((
                TaskKey {
                    fingerprint: expected_fingerprint,
                    code,
                    input,
                    mode,
                    fault_fp: 0,
                    pulse: 0,
                },
                report,
            ))
        })
        .collect()
}

/// A minimal all-zero report for store/shared-store unit tests.
#[cfg(test)]
pub(crate) fn test_report(cycles: u64) -> RunReport {
    use ds_cache::CacheStats;
    use ds_noc::XbarStats;
    use ds_sim::Cycle;
    RunReport {
        mode: Mode::Ccsm,
        total_cycles: Cycle::new(cycles),
        gpu_l2: CacheStats::new(),
        cpu_l2: CacheStats::new(),
        gpu_l1: CacheStats::new(),
        cpu_l1: CacheStats::new(),
        coh_net: XbarStats::default(),
        direct_net: XbarStats::default(),
        gpu_net: XbarStats::default(),
        dram_reads: 0,
        dram_writes: 0,
        direct_pushes: 0,
        store_buffer_stalls: 0,
        kernels_run: 0,
        warps_completed: 0,
        first_kernel_start: Cycle::ZERO,
        last_kernel_end: Cycle::ZERO,
        kernel_spans: vec![],
        push_bypasses: 0,
        hub_transactions: 0,
        hub_conflicts: 0,
        hub_probes: 0,
        dram_row_hits: 0,
        pushes_attempted: 0,
        pushes_retried: 0,
        pushes_degraded: 0,
        faults_injected: 0,
        latency: ds_probe::LatencyReport::new(),
        stages: ds_probe::StageBreakdown::new(),
        lens: ds_probe::LensReport::empty(),
        epochs: vec![],
        epoch_window: 0,
        events: 0,
        host: None,
        scope: None,
        pulse: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::config_fingerprint;
    use crate::job::Task;

    fn tiny_report(cycles: u64) -> RunReport {
        test_report(cycles)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ds-runner-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memo_round_trip() {
        let cfg = SystemConfig::paper_default();
        let key = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm).key();
        let mut store = ResultStore::new();
        assert!(store.get(&key).is_none());
        store.insert(key.clone(), tiny_report(777));
        assert_eq!(store.get(&key).unwrap().total_cycles.as_u64(), 777);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn disk_round_trip_and_reload() {
        let dir = tmp_dir("roundtrip");
        let cfg = SystemConfig::paper_default();
        let fp = config_fingerprint(&cfg);
        let key = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm).key();

        let mut writer = ResultStore::new();
        writer.enable_disk(&dir);
        writer.insert(key.clone(), tiny_report(4242));
        writer.persist(fp, &cfg);

        let mut reader = ResultStore::new();
        reader.enable_disk(&dir);
        let loaded = reader.get(&key).expect("cache file supplies the result");
        assert_eq!(loaded.total_cycles.as_u64(), 4242);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_mismatched_files_are_quarantined() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = SystemConfig::paper_default();
        let fp = config_fingerprint(&cfg);
        let path = ResultStore::cache_path(&dir, fp);
        let quarantined = dir.join("quarantine").join(path.file_name().unwrap());
        std::fs::write(&path, "{ not json").unwrap();

        let key = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm).key();
        let mut store = ResultStore::new();
        store.enable_disk(&dir);
        assert!(store.get(&key).is_none(), "corrupt file must not poison");
        assert!(!path.exists(), "corrupt file moved out of the cache slot");
        assert!(quarantined.exists(), "corrupt file kept for inspection");

        // A syntactically fine file whose fingerprint disagrees with
        // its name is also quarantined.
        let doc = Json::Obj(vec![
            ("format".into(), Json::Int(FORMAT_VERSION)),
            ("fingerprint".into(), Json::Str("00000000deadbeef".into())),
            ("config".into(), Json::Str("x".into())),
            ("entries".into(), Json::Arr(vec![])),
        ]);
        std::fs::write(&path, doc.pretty()).unwrap();
        let mut store2 = ResultStore::new();
        store2.enable_disk(&dir);
        assert!(store2.get(&key).is_none());
        assert!(!path.exists());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_and_old_version_files_are_quarantined_then_rewritable() {
        let dir = tmp_dir("quarantine");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = SystemConfig::paper_default();
        let fp = config_fingerprint(&cfg);
        let key = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm).key();
        let path = ResultStore::cache_path(&dir, fp);

        // A valid file truncated mid-write (crash, full disk).
        let mut writer = ResultStore::new();
        writer.enable_disk(&dir);
        writer.insert(key.clone(), tiny_report(4242));
        writer.persist(fp, &cfg);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let mut store = ResultStore::new();
        store.enable_disk(&dir);
        assert!(store.get(&key).is_none(), "truncated file must not load");
        assert!(!path.exists(), "truncated file quarantined");

        // A file from an older format version.
        let doc = Json::Obj(vec![
            ("format".into(), Json::Int(FORMAT_VERSION - 1)),
            ("fingerprint".into(), Json::Str(format!("{fp:016x}"))),
            ("config".into(), Json::Str("x".into())),
            ("entries".into(), Json::Arr(vec![])),
        ]);
        std::fs::write(&path, doc.pretty()).unwrap();
        let mut store2 = ResultStore::new();
        store2.enable_disk(&dir);
        assert!(store2.get(&key).is_none(), "old version must not load");
        assert!(!path.exists(), "old-version file quarantined");

        // Garbage bytes (not even UTF-8 JSON structure).
        std::fs::write(&path, [0u8, 159, 146, 150, 7, 255]).unwrap();
        let mut store3 = ResultStore::new();
        store3.enable_disk(&dir);
        assert!(store3.get(&key).is_none());
        assert!(!path.exists(), "garbage file quarantined");

        // The slot is clean again: a fresh persist round-trips.
        let mut rewriter = ResultStore::new();
        rewriter.enable_disk(&dir);
        rewriter.insert(key.clone(), tiny_report(7));
        rewriter.persist(fp, &cfg);
        let mut reader = ResultStore::new();
        reader.enable_disk(&dir);
        assert_eq!(reader.get(&key).unwrap().total_cycles.as_u64(), 7);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulted_results_stay_out_of_the_disk_cache() {
        let dir = tmp_dir("faulted");
        let cfg = SystemConfig::paper_default();
        let fp = config_fingerprint(&cfg);
        let mut plan = ds_core::FaultPlan::default();
        plan.direct_net.drop = 50;
        let faulted_key = Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore)
            .with_faults(plan)
            .key();
        let plain_key = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm).key();

        let mut writer = ResultStore::new();
        writer.enable_disk(&dir);
        writer.insert(faulted_key.clone(), tiny_report(1));
        writer.insert(plain_key.clone(), tiny_report(2));
        writer.persist(fp, &cfg);

        let mut reader = ResultStore::new();
        reader.enable_disk(&dir);
        assert!(
            reader.get(&faulted_key).is_none(),
            "faulted entries are process-local"
        );
        assert_eq!(reader.get(&plain_key).unwrap().total_cycles.as_u64(), 2);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pulsed_results_stay_out_of_the_disk_cache() {
        let dir = tmp_dir("pulsed");
        let cfg = SystemConfig::paper_default();
        let fp = config_fingerprint(&cfg);
        let pulsed_key = Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore)
            .with_pulse(1000)
            .key();
        let plain_key = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm).key();

        let mut writer = ResultStore::new();
        writer.enable_disk(&dir);
        writer.insert(pulsed_key.clone(), tiny_report(1));
        writer.insert(plain_key.clone(), tiny_report(2));
        writer.persist(fp, &cfg);

        let mut reader = ResultStore::new();
        reader.enable_disk(&dir);
        assert!(
            reader.get(&pulsed_key).is_none(),
            "pulsed entries are process-local"
        );
        assert_eq!(reader.get(&plain_key).unwrap().total_cycles.as_u64(), 2);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_persists_and_reads_never_tear() {
        // Satellite of the ds-serve PR: writers rewrite the same
        // fingerprint slot while readers load it. With atomic
        // temp-file + rename writes a reader sees a complete document
        // or none — never a torn prefix that would be quarantined.
        let dir = tmp_dir("race");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = SystemConfig::paper_default();
        let fp = config_fingerprint(&cfg);
        let key = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm).key();

        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let (dir, cfg, key) = (dir.clone(), cfg.clone(), key.clone());
                scope.spawn(move || {
                    for i in 0..25 {
                        let mut store = ResultStore::new();
                        store.enable_disk(&dir);
                        store.insert(key.clone(), tiny_report(w * 1000 + i));
                        store.persist(fp, &cfg);
                    }
                });
            }
            for _ in 0..4 {
                let (dir, key) = (dir.clone(), key.clone());
                scope.spawn(move || {
                    for _ in 0..50 {
                        let mut store = ResultStore::new();
                        store.enable_disk(&dir);
                        // Either absent (not yet written) or a valid
                        // complete document; a torn read would
                        // quarantine, which the final assert catches.
                        let _ = store.get(&key);
                    }
                });
            }
        });

        assert!(
            !dir.join("quarantine").exists(),
            "a reader saw a torn cache file"
        );
        let mut reader = ResultStore::new();
        reader.enable_disk(&dir);
        assert!(reader.get(&key).is_some(), "final state is a valid file");
        assert!(
            !std::fs::read_dir(&dir).unwrap().any(|e| {
                let name = e.unwrap().file_name();
                name.to_string_lossy().contains(".tmp-")
            }),
            "temp files are renamed or cleaned up"
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_edits_point_at_different_files() {
        let cfg = SystemConfig::paper_default();
        let mut edited = SystemConfig::paper_default();
        edited.gpu_l2_prefetch = true;
        let dir = Path::new("results");
        assert_ne!(
            ResultStore::cache_path(dir, config_fingerprint(&cfg)),
            ResultStore::cache_path(dir, config_fingerprint(&edited))
        );
    }
}
