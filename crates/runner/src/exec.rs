//! The parallel executor.
//!
//! [`Runner`] drains a deduplicated task list over `std::thread::scope`
//! workers pulling indices from a shared atomic counter. This is sound
//! because each `System::run` is a self-contained seeded simulation —
//! no shared mutable state — so a parallel sweep is *bit-identical* to
//! the serial one (asserted by the `determinism` integration test).
//! Results land in per-task slots, making output order independent of
//! scheduling.
//!
//! Worker count comes from, in priority order: an explicit
//! [`Runner::jobs`] call, the `DS_RUNNER_JOBS` environment variable,
//! and the machine's available parallelism.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};
use std::time::{Duration, Instant};

use ds_core::{Comparison, InputSize, Mode, Pipeline, PipelineError, RunReport, SystemConfig};
use ds_probe::scope::{self, FlightLog, FlightRecorder, SpanKind, SpanRecord, SpanTree};
use ds_workloads::{catalog, Benchmark};

use crate::fingerprint::config_fingerprint;
use crate::job::{sweep_tasks, Task, TaskKey};
use crate::json::Json;
use crate::store::{write_atomic, ResultStore};

/// How one task ended, for harnesses that must keep going when a run
/// fails (`Runner::run_tasks_outcomes`). The chaos CLI and the fault
/// sweeps are built on this: a panicking or deadlocked simulation is a
/// data point, not a reason to lose the rest of the sweep.
#[derive(Debug, Clone)]
pub enum TaskOutcome {
    /// The run completed with no degraded pushes.
    Ok(Box<RunReport>),
    /// The run completed, but at least one direct-store push exhausted
    /// its retries and degraded to the demand path.
    Degraded(Box<RunReport>),
    /// The simulation panicked; payload is the panic message.
    Panicked(String),
    /// The simulation exceeded the harness wall-clock budget.
    TimedOut,
    /// Any other failure (translation error, unknown benchmark,
    /// watchdog abort), rendered as text.
    Failed(String),
}

impl TaskOutcome {
    /// The completed report, if the run finished (ok or degraded).
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            TaskOutcome::Ok(r) | TaskOutcome::Degraded(r) => Some(r),
            _ => None,
        }
    }

    /// Short status tag for tables and progress lines.
    pub fn tag(&self) -> &'static str {
        match self {
            TaskOutcome::Ok(_) => "ok",
            TaskOutcome::Degraded(_) => "degraded",
            TaskOutcome::Panicked(_) => "panicked",
            TaskOutcome::TimedOut => "timed-out",
            TaskOutcome::Failed(_) => "failed",
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one task's simulation with panics converted to
/// [`PipelineError::Panicked`] so a crashing run cannot take the
/// worker pool down with it. When a flight `recorder` is armed, trace
/// events stream into its ring; the shared handle survives the
/// `catch_unwind` even when the run itself does not.
fn simulate_isolated(
    task: &Task,
    bench: &Benchmark,
    recorder: Option<&FlightRecorder>,
) -> Result<RunReport, PipelineError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let pipeline = Pipeline::with_config(task.cfg.clone());
        // The pulsed entry point takes any tracer plus the fault plan,
        // so one arm per recorder state covers all pulsed runs —
        // faulted or not.
        match recorder {
            Some(rec) if task.pulse > 0 => {
                pipeline
                    .run_one_pulsed(
                        bench,
                        task.input,
                        task.mode,
                        rec.clone(),
                        ds_probe::PulseConfig::with_window(task.pulse),
                        &task.faults,
                    )
                    .0
            }
            None if task.pulse > 0 => {
                pipeline
                    .run_one_pulsed(
                        bench,
                        task.input,
                        task.mode,
                        ds_probe::NullTracer,
                        ds_probe::PulseConfig::with_window(task.pulse),
                        &task.faults,
                    )
                    .0
            }
            Some(rec) if task.faults.is_active() => {
                pipeline
                    .run_one_faulted_traced(bench, task.input, task.mode, &task.faults, rec.clone())
                    .0
            }
            Some(rec) => pipeline
                .run_one_instrumented(bench, task.input, task.mode, rec.clone(), None)
                .map(|(report, _)| report),
            None if task.faults.is_active() => {
                pipeline.run_one_faulted(bench, task.input, task.mode, &task.faults)
            }
            None => pipeline.run_one(bench, task.input, task.mode),
        }
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(PipelineError::Panicked(panic_message(&payload))),
    }
}

/// [`simulate_isolated`] under an optional wall-clock budget. The
/// timed variant runs the simulation on a detached thread and abandons
/// it on timeout — the thread is leaked (a simulator offers no
/// preemption point), which is acceptable for a CLI-lifetime harness
/// and is why timeouts are opt-in.
fn simulate_task(
    task: &Task,
    bench: &Benchmark,
    timeout: Option<Duration>,
    recorder: Option<&FlightRecorder>,
) -> Result<RunReport, PipelineError> {
    let Some(limit) = timeout else {
        return simulate_isolated(task, bench, recorder);
    };
    let (tx, rx) = mpsc::channel();
    let task = task.clone();
    let bench = bench.clone();
    let recorder = recorder.cloned();
    std::thread::spawn(move || {
        let _ = tx.send(simulate_isolated(&task, &bench, recorder.as_ref()));
    });
    match rx.recv_timeout(limit) {
        Ok(result) => result,
        Err(_) => Err(PipelineError::TimedOut),
    }
}

/// The postmortem file a non-Ok outcome of `task` dumps to when the
/// runner has a postmortem directory configured — deterministic, so
/// CLIs can point users at the file without plumbing paths back
/// through the executor.
pub fn postmortem_path(dir: &Path, task: &Task) -> PathBuf {
    let key = task.key();
    dir.join(format!(
        "{}-{}-{}-{:016x}-{:016x}.json",
        key.code, key.input, key.mode, key.fingerprint, key.fault_fp
    ))
}

/// Builds the ds-scope span tree for one executed task: the task span
/// covers enqueue (the batch's epoch) to completion, telescoping into
/// queue-wait and sim-run children. The sim-run span's label carries
/// the simulated cycle count, linking down to the report's
/// `StageBreakdown` transaction records riding the same report.
fn task_span_tree(task: &Task, report: &RunReport, picked_us: u64, done_us: u64) -> SpanTree {
    let task_id = scope::next_span_id();
    let picked_us = picked_us.min(done_us);
    SpanTree {
        spans: vec![
            SpanRecord {
                id: task_id,
                parent: 0,
                kind: SpanKind::Task,
                label: format!("{} {} {}", task.code, task.input, task.mode),
                start_us: 0,
                end_us: done_us,
            },
            SpanRecord {
                id: scope::next_span_id(),
                parent: task_id,
                kind: SpanKind::QueueWait,
                label: String::new(),
                start_us: 0,
                end_us: picked_us,
            },
            SpanRecord {
                id: scope::next_span_id(),
                parent: task_id,
                kind: SpanKind::SimRun,
                label: format!(
                    "{} cycles, {} staged txns",
                    report.total_cycles.as_u64(),
                    report.stages.loads + report.stages.pushes
                ),
                start_us: picked_us,
                end_us: done_us,
            },
        ],
    }
}

/// Serializes a postmortem document. Contents are derived exclusively
/// from deterministic inputs (task coordinates, sim-cycle-stamped
/// flight entries, outcome detail), so a replayed faulted run dumps
/// byte-identical files regardless of worker count.
fn postmortem_doc(
    task: &Task,
    tag: &str,
    detail: Option<&str>,
    report: Option<&RunReport>,
    flight: Option<&FlightLog>,
) -> Json {
    let key = task.key();
    let mut fields = vec![
        ("format".into(), Json::Int(1)),
        ("bench".into(), Json::Str(key.code.clone())),
        ("input".into(), Json::Str(key.input.to_string())),
        ("mode".into(), Json::Str(key.mode.to_string())),
        (
            "fingerprint".into(),
            Json::Str(format!("{:016x}", key.fingerprint)),
        ),
        (
            "fault_fp".into(),
            Json::Str(format!("{:016x}", key.fault_fp)),
        ),
        ("outcome".into(), Json::Str(tag.into())),
        (
            "detail".into(),
            match detail {
                Some(text) => Json::Str(text.to_string()),
                None => Json::Null,
            },
        ),
    ];
    if let Some(r) = report {
        fields.push((
            "run".into(),
            Json::Obj(vec![
                ("total_cycles".into(), Json::Int(r.total_cycles.as_u64())),
                ("pushes_attempted".into(), Json::Int(r.pushes_attempted)),
                ("pushes_retried".into(), Json::Int(r.pushes_retried)),
                ("pushes_degraded".into(), Json::Int(r.pushes_degraded)),
                ("faults_injected".into(), Json::Int(r.faults_injected)),
            ]),
        ));
    }
    fields.push((
        "flight".into(),
        match flight {
            Some(log) => Json::Obj(vec![
                ("capacity".into(), Json::Int(scope::FLIGHT_CAPACITY as u64)),
                ("dropped".into(), Json::Int(log.dropped)),
                (
                    "entries".into(),
                    Json::Arr(
                        log.entries
                            .iter()
                            .map(|e| {
                                let line = ds_probe::jsonl::render_event(e);
                                crate::json::parse(&line).unwrap_or(Json::Str(line))
                            })
                            .collect(),
                    ),
                ),
            ]),
            // The ring rides the simulation thread; a timed-out run's
            // thread is abandoned mid-flight, so its (wall-clock-
            // dependent) contents are deliberately not captured.
            None => Json::Null,
        },
    ));
    Json::Obj(fields)
}

/// Reads `DS_RUNNER_JOBS`, falling back to the machine's available
/// parallelism.
pub fn default_jobs() -> usize {
    std::env::var("DS_RUNNER_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// The experiment runner: plans, executes in parallel, memoizes.
///
/// # Examples
///
/// ```no_run
/// use ds_core::{InputSize, Mode, SystemConfig};
/// use ds_runner::Runner;
///
/// let cfg = SystemConfig::paper_default();
/// let mut runner = Runner::new().jobs(4);
/// let comparisons = runner
///     .sweep(&cfg, InputSize::Small, Mode::DirectStore, |_| true)
///     .expect("catalog benchmarks translate");
/// assert_eq!(comparisons.len(), 22);
/// ```
#[derive(Debug)]
pub struct Runner {
    jobs: usize,
    progress: bool,
    store: ResultStore,
    simulations: u64,
    task_timeout: Option<Duration>,
    postmortem_dir: Option<PathBuf>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner with [`default_jobs`] workers, progress lines enabled
    /// and no disk cache.
    pub fn new() -> Self {
        Runner {
            jobs: default_jobs(),
            progress: true,
            store: ResultStore::new(),
            simulations: 0,
            task_timeout: None,
            postmortem_dir: None,
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = n.max(1);
        self
    }

    /// Sets a per-task wall-clock budget. A run that exceeds it is
    /// reported as timed out; its simulation thread is abandoned (see
    /// `simulate_task` for the trade-off).
    pub fn task_timeout(mut self, limit: Duration) -> Self {
        self.task_timeout = Some(limit);
        self
    }

    /// Enables crash postmortems: every task that does not finish Ok
    /// (panicked, timed out, watchdog-aborted, or degraded) dumps a
    /// diagnostic file under `dir` (conventionally
    /// `results/postmortem/`), named by [`postmortem_path`]. Fault-
    /// injected tasks additionally run with a [`FlightRecorder`]
    /// armed, so the dump carries the simulation's last trace events
    /// alongside the outcome's diagnostic.
    pub fn with_postmortems(mut self, dir: impl Into<PathBuf>) -> Self {
        self.postmortem_dir = Some(dir.into());
        self
    }

    /// Enables or disables per-job progress lines on stderr.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Enables the on-disk result cache under `dir` (conventionally
    /// `results/`).
    pub fn with_disk_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store.enable_disk(dir);
        self
    }

    /// Simulations actually executed by this runner (memo and disk
    /// hits excluded) — the metric the warm-cache tests assert on.
    pub fn simulations_run(&self) -> u64 {
        self.simulations
    }

    /// Runs every task, returning one report per input task in input
    /// order. Duplicate and already-cached tasks are not re-simulated.
    ///
    /// # Errors
    ///
    /// Returns the first failing task's error (by task order):
    /// [`PipelineError::UnknownBenchmark`] for a code the catalog does
    /// not know, or a translation failure. Results of tasks that
    /// succeeded before the failure stay memoized.
    pub fn run_tasks(&mut self, tasks: &[Task]) -> Result<Vec<RunReport>, PipelineError> {
        let keys: Vec<TaskKey> = tasks.iter().map(Task::key).collect();

        // Plan: unique tasks not already served by the store.
        let mut missing: Vec<(usize, Benchmark)> = Vec::new();
        let mut planned = std::collections::HashSet::new();
        for (i, (task, key)) in tasks.iter().zip(&keys).enumerate() {
            if self.store.get(key).is_some() || !planned.insert(key.clone()) {
                continue;
            }
            let bench = catalog::by_code(&task.code)
                .ok_or_else(|| PipelineError::UnknownBenchmark(task.code.clone()))?;
            missing.push((i, bench));
        }

        if !missing.is_empty() {
            let failures = self.execute(tasks, &keys, &missing);
            if let Some(e) = failures.into_iter().flatten().next() {
                return Err(e);
            }
        }

        Ok(keys
            .iter()
            .map(|key| {
                self.store
                    .get(key)
                    .expect("every task is memoized after execution")
                    .clone()
            })
            .collect())
    }

    /// Runs every task like [`Runner::run_tasks`], but never gives up
    /// on the batch: each task gets a [`TaskOutcome`] — completed
    /// (clean or with degraded pushes), panicked, timed out, or failed
    /// — and one bad run does not hide the others' results. Fault
    /// plans attached via [`Task::with_faults`] are honored here.
    pub fn run_tasks_outcomes(&mut self, tasks: &[Task]) -> Vec<TaskOutcome> {
        let keys: Vec<TaskKey> = tasks.iter().map(Task::key).collect();

        let mut missing: Vec<(usize, Benchmark)> = Vec::new();
        let mut planned = std::collections::HashSet::new();
        let mut failed: std::collections::HashMap<TaskKey, TaskOutcome> =
            std::collections::HashMap::new();
        for (i, (task, key)) in tasks.iter().zip(&keys).enumerate() {
            if self.store.get(key).is_some() || !planned.insert(key.clone()) {
                continue;
            }
            match catalog::by_code(&task.code) {
                Some(bench) => missing.push((i, bench)),
                None => {
                    let e = PipelineError::UnknownBenchmark(task.code.clone());
                    failed.insert(key.clone(), TaskOutcome::Failed(e.to_string()));
                }
            }
        }

        if !missing.is_empty() {
            let failures = self.execute(tasks, &keys, &missing);
            for ((task_idx, _), failure) in missing.iter().zip(failures) {
                if let Some(e) = failure {
                    let outcome = match e {
                        PipelineError::Panicked(msg) => TaskOutcome::Panicked(msg),
                        PipelineError::TimedOut => TaskOutcome::TimedOut,
                        other => TaskOutcome::Failed(other.to_string()),
                    };
                    failed.insert(keys[*task_idx].clone(), outcome);
                }
            }
        }

        keys.iter()
            .map(|key| match self.store.get(key) {
                Some(report) if report.pushes_degraded > 0 => {
                    TaskOutcome::Degraded(Box::new(report.clone()))
                }
                Some(report) => TaskOutcome::Ok(Box::new(report.clone())),
                None => failed
                    .get(key)
                    .cloned()
                    .expect("every task either completed or recorded a failure"),
            })
            .collect()
    }

    /// Runs the uncached subset in parallel and folds successes into
    /// the store. Returns one entry per `missing` item: `None` for a
    /// memoized success, `Some(error)` otherwise.
    fn execute(
        &mut self,
        tasks: &[Task],
        keys: &[TaskKey],
        missing: &[(usize, Benchmark)],
    ) -> Vec<Option<PipelineError>> {
        let total = missing.len();
        let workers = self.jobs.min(total).max(1);
        let progress = self.progress;
        if progress {
            eprintln!("ds-runner: {total} job(s) to simulate on {workers} worker(s)");
        }

        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let simulated = AtomicU64::new(0);
        let timeout = self.task_timeout;
        let postmortems = self.postmortem_dir.is_some();
        // Scope spans are host-time observations; like host profiles
        // they attach only when explicitly enabled at full probe
        // level, so default runs stay bit-identical.
        let scoped = scope::enabled() && ds_probe::prof::level() == ds_probe::ProbeLevel::Full;
        let epoch = Instant::now();
        type SlotValue = (Result<RunReport, PipelineError>, Option<FlightLog>);
        let slots: Vec<OnceLock<SlotValue>> = (0..total).map(|_| OnceLock::new()).collect();

        std::thread::scope(|scope_| {
            for _ in 0..workers {
                scope_.spawn(|| loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= total {
                        break;
                    }
                    let (task_idx, bench) = &missing[slot];
                    let task = &tasks[*task_idx];
                    let started = Instant::now();
                    let picked_us = epoch.elapsed().as_micros() as u64;
                    // The flight recorder arms on fault-injected tasks
                    // only: that is where watchdog aborts live, and it
                    // keeps the plain sweep path tracer-free.
                    let recorder =
                        (postmortems && task.faults.is_active()).then(FlightRecorder::new);
                    let mut result = simulate_task(task, bench, timeout, recorder.as_ref());
                    if scoped {
                        if let Ok(report) = &mut result {
                            let done_us = epoch.elapsed().as_micros() as u64;
                            report.scope = Some(task_span_tree(task, report, picked_us, done_us));
                        }
                    }
                    // A timed-out run's ring is abandoned mid-flight
                    // with its leaked thread; snapshotting it would be
                    // wall-clock-dependent, so only decided outcomes
                    // capture one.
                    let flight = match (&result, &recorder) {
                        (Err(PipelineError::TimedOut), _) => None,
                        (_, Some(rec)) => Some(rec.snapshot()),
                        _ => None,
                    };
                    simulated.fetch_add(1, Ordering::Relaxed);
                    if progress {
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        match &result {
                            Ok(r) => eprintln!(
                                "ds-runner: [{n}/{total}] {} {} {}: {} cycles ({} ms)",
                                task.code,
                                task.input,
                                task.mode,
                                r.total_cycles.as_u64(),
                                started.elapsed().as_millis()
                            ),
                            Err(e) => eprintln!(
                                "ds-runner: [{n}/{total}] {} {} {}: FAILED: {e}",
                                task.code, task.input, task.mode
                            ),
                        }
                    }
                    slots[slot]
                        .set((result, flight))
                        .unwrap_or_else(|_| panic!("slot {slot} written twice"));
                });
            }
        });
        self.simulations += simulated.into_inner();

        // Fold results in task order so failure reporting — and
        // postmortem dumping — is deterministic regardless of worker
        // scheduling.
        let mut failures = Vec::with_capacity(missing.len());
        let mut touched_fingerprints = Vec::new();
        for ((task_idx, _), slot) in missing.iter().zip(slots) {
            let key = &keys[*task_idx];
            let (result, flight) = slot.into_inner().expect("worker filled every slot");
            self.dump_postmortem(&tasks[*task_idx], &result, flight.as_ref());
            match result {
                Ok(report) => {
                    if !touched_fingerprints.contains(&key.fingerprint) {
                        touched_fingerprints.push(key.fingerprint);
                    }
                    self.store.insert(key.clone(), report);
                    failures.push(None);
                }
                Err(e) => failures.push(Some(e)),
            }
        }
        if self.store.disk_enabled() {
            for fp in touched_fingerprints {
                let (idx, _) = missing
                    .iter()
                    .find(|(i, _)| keys[*i].fingerprint == fp)
                    .expect("fingerprint came from this missing set");
                self.store.persist(fp, &tasks[*idx].cfg);
            }
        }
        failures
    }

    /// Writes `task`'s postmortem file when postmortems are enabled
    /// and the result is anything but a clean Ok. Best-effort like the
    /// cache: IO failures are reported on stderr, never fatal.
    fn dump_postmortem(
        &self,
        task: &Task,
        result: &Result<RunReport, PipelineError>,
        flight: Option<&FlightLog>,
    ) {
        let Some(dir) = &self.postmortem_dir else {
            return;
        };
        let (tag, detail, report) = match result {
            Ok(r) if r.pushes_degraded > 0 => ("degraded", None, Some(r)),
            Ok(_) => return,
            Err(PipelineError::Panicked(msg)) => ("panicked", Some(msg.clone()), None),
            Err(PipelineError::TimedOut) => (
                "timed-out",
                Some("wall-clock budget exceeded; simulation thread abandoned".to_string()),
                None,
            ),
            Err(e) => ("failed", Some(e.to_string()), None),
        };
        let doc = postmortem_doc(task, tag, detail.as_deref(), report, flight);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "ds-runner: cannot create postmortem dir {}: {e}",
                dir.display()
            );
            return;
        }
        let path = postmortem_path(dir, task);
        if let Err(e) = write_atomic(dir, &path, doc.pretty().as_bytes()) {
            eprintln!("ds-runner: cannot write postmortem {}: {e}", path.display());
        }
    }

    /// Runs one benchmark under one mode and configuration.
    ///
    /// # Errors
    ///
    /// See [`Runner::run_tasks`].
    pub fn run_one(
        &mut self,
        cfg: &SystemConfig,
        code: &str,
        input: InputSize,
        mode: Mode,
    ) -> Result<RunReport, PipelineError> {
        let reports = self.run_tasks(&[Task::new(cfg, code, input, mode)])?;
        Ok(reports.into_iter().next().expect("one task, one report"))
    }

    /// Runs the CCSM-vs-`ds_mode` comparison sweep over the benchmarks
    /// `filter` selects, in catalog order.
    ///
    /// # Errors
    ///
    /// See [`Runner::run_tasks`].
    pub fn sweep(
        &mut self,
        cfg: &SystemConfig,
        input: InputSize,
        ds_mode: Mode,
        filter: impl Fn(&Benchmark) -> bool,
    ) -> Result<Vec<Comparison>, PipelineError> {
        let tasks = sweep_tasks(cfg, input, ds_mode, filter);
        let reports = self.run_tasks(&tasks)?;
        Ok(tasks
            .chunks(2)
            .zip(reports.chunks(2))
            .map(|(pair, reports)| Comparison {
                code: pair[0].code.clone(),
                input,
                ccsm: reports[0].clone(),
                direct_store: reports[1].clone(),
            })
            .collect())
    }

    /// The fingerprint the store files results under for `cfg` —
    /// exposed so tools can point users at the right cache file.
    pub fn fingerprint(cfg: &SystemConfig) -> u64 {
        config_fingerprint(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_benchmark_is_a_clean_error() {
        let cfg = SystemConfig::paper_default();
        let mut runner = Runner::new().jobs(2).progress(false);
        let err = runner
            .run_one(&cfg, "NOPE", InputSize::Small, Mode::Ccsm)
            .unwrap_err();
        assert!(
            matches!(err, PipelineError::UnknownBenchmark(ref c) if c == "NOPE"),
            "{err}"
        );
    }

    #[test]
    fn duplicate_tasks_simulate_once() {
        let cfg = SystemConfig::paper_default();
        let mut runner = Runner::new().jobs(2).progress(false);
        let task = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm);
        let reports = runner
            .run_tasks(&[task.clone(), task.clone(), task])
            .unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(runner.simulations_run(), 1);
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{:?}", reports[2]),
            "duplicates share the memoized report"
        );
    }

    #[test]
    fn memo_spans_calls() {
        let cfg = SystemConfig::paper_default();
        let mut runner = Runner::new().jobs(1).progress(false);
        runner
            .run_one(&cfg, "VA", InputSize::Small, Mode::Ccsm)
            .unwrap();
        let after_first = runner.simulations_run();
        runner
            .run_one(&cfg, "VA", InputSize::Small, Mode::Ccsm)
            .unwrap();
        assert_eq!(runner.simulations_run(), after_first);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn pulsed_tasks_carry_a_series_and_do_not_alias_plain_ones() {
        let cfg = SystemConfig::paper_default();
        let mut runner = Runner::new().jobs(2).progress(false);
        let plain = Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore);
        let pulsed = plain.clone().with_pulse(1000);
        let reports = runner.run_tasks(&[plain, pulsed]).unwrap();
        assert!(reports[0].pulse.is_none(), "plain task stays pulse-free");
        let series = reports[1].pulse.as_ref().expect("pulsed task has a series");
        assert!(!series.is_empty());
        assert_eq!(
            runner.simulations_run(),
            2,
            "a pulsed task must not be served from the plain memo slot"
        );
        assert_eq!(
            reports[0].total_cycles, reports[1].total_cycles,
            "pulse sampling never perturbs simulated timing"
        );
    }

    #[test]
    fn outcomes_keep_going_past_failures() {
        let cfg = SystemConfig::paper_default();
        let mut runner = Runner::new().jobs(2).progress(false);
        let outcomes = runner.run_tasks_outcomes(&[
            Task::new(&cfg, "NOPE", InputSize::Small, Mode::Ccsm),
            Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm),
        ]);
        assert_eq!(outcomes.len(), 2);
        assert!(
            matches!(&outcomes[0], TaskOutcome::Failed(msg) if msg.contains("NOPE")),
            "{:?}",
            outcomes[0].tag()
        );
        assert!(matches!(outcomes[1], TaskOutcome::Ok(_)));
        assert_eq!(outcomes[1].report().unwrap().mode, Mode::Ccsm);
    }
}
