//! # ds-runner — experiment orchestration
//!
//! The subsystem that owns *running experiments*: every figure,
//! ablation and export binary plans its simulations as [`Task`]s and
//! hands them to a [`Runner`], which executes them on a worker pool,
//! memoizes results, and (opt-in) caches them on disk so repeated
//! invocations re-simulate nothing.
//!
//! * [`Task`] / [`TaskKey`] — the job model: one simulation =
//!   benchmark code + input size + mode + full [`SystemConfig`];
//!   identity is the config's stable [`config_fingerprint`] plus the
//!   three coordinates ([`job`]).
//! * [`Runner`] — the parallel executor: `std::thread::scope` workers
//!   over a shared atomic queue, `--jobs N` / `DS_RUNNER_JOBS`
//!   control, results bit-identical to a serial run ([`exec`]).
//! * [`store::ResultStore`] — in-process memo plus the on-disk JSON
//!   cache under `results/`, invalidated by fingerprint ([`store`]).
//! * [`shared::SharedStore`] — the concurrency-safe, single-flight,
//!   hit/miss-accounted view of the store that `ds-serve` workers
//!   race on ([`shared`]).
//! * [`report`] — the machine-readable serializers: JSON and CSV for
//!   [`RunReport`]s and [`Comparison`]s, shared by every binary.
//! * `dsrun` — the CLI over all of the above (`src/bin/dsrun.rs`).
//!
//! [`SystemConfig`]: ds_core::SystemConfig
//! [`RunReport`]: ds_core::RunReport
//! [`Comparison`]: ds_core::Comparison
//!
//! # Examples
//!
//! ```no_run
//! use ds_core::{InputSize, Mode, SystemConfig};
//! use ds_runner::Runner;
//!
//! let mut runner = Runner::new().jobs(4).with_disk_cache("results");
//! let comparisons = runner
//!     .sweep(
//!         &SystemConfig::paper_default(),
//!         InputSize::Small,
//!         Mode::DirectStore,
//!         |_| true,
//!     )
//!     .expect("catalog benchmarks translate");
//! for c in &comparisons {
//!     println!("{c}");
//! }
//! ```

pub mod exec;
pub mod fingerprint;
pub mod job;
pub mod json;
pub mod report;
pub mod shared;
pub mod store;

pub use exec::{default_jobs, postmortem_path, Runner, TaskOutcome};
pub use fingerprint::{config_fingerprint, fnv1a};
pub use job::{dedup_tasks, fault_fingerprint, sweep_tasks, Task, TaskKey};
pub use report::{
    comparison_csv_row, comparison_to_json, host_from_json, host_to_json, report_csv_row,
    report_from_json, report_to_json, scope_from_json, scope_to_json, span_from_json, span_to_json,
    stages_from_json, stages_to_json, COMPARISON_CSV_HEADER, REPORT_CSV_HEADER,
};
pub use shared::{Provenance, SharedStore, StoreStats};
pub use store::ResultStore;
