//! Machine-readable report serialization: JSON and CSV for
//! [`RunReport`] and [`Comparison`], in one place.
//!
//! The JSON encoding is lossless over `RunReport` — every field is an
//! integer or a list of integer pairs — so the on-disk result cache
//! round-trips reports bit-identically ([`report_to_json`] /
//! [`report_from_json`] are exact inverses, asserted by test).

use ds_cache::CacheStats;
use ds_core::{Comparison, InputSize, Mode, RunReport};
use ds_noc::XbarStats;
use ds_probe::pulse::{PULSE_COUNTER_NAMES, PULSE_GAUGE_NAMES};
use ds_probe::{
    BankTraffic, EpochSample, EpochTotals, HostPhase, HostProfile, LatencyReport, LensReport,
    LinkTraffic, NetId, PulseAnomaly, PulseAnomalyKind, PulseSeries, PulseTotals, SliceTraffic,
    SpanKind, SpanRecord, SpanTree, Stage, StageBreakdown,
};
use ds_sim::{Cycle, Histogram};

use crate::json::Json;

/// Renders a mode the way [`parse_mode`] reads it back (`Display`).
pub fn mode_name(mode: Mode) -> String {
    mode.to_string()
}

/// Parses a mode name produced by its `Display` impl.
pub fn parse_mode(name: &str) -> Option<Mode> {
    match name {
        "CCSM" => Some(Mode::Ccsm),
        "DS" => Some(Mode::DirectStore),
        "DS-only" => Some(Mode::DirectStoreOnly),
        _ => None,
    }
}

/// Parses an input-size name produced by its `Display` impl.
pub fn parse_input(name: &str) -> Option<InputSize> {
    match name {
        "small" => Some(InputSize::Small),
        "big" => Some(InputSize::Big),
        _ => None,
    }
}

fn cache_stats_to_json(s: &CacheStats) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::Int(s.hits.value())),
        ("misses".into(), Json::Int(s.misses.value())),
        (
            "compulsory_misses".into(),
            Json::Int(s.compulsory_misses.value()),
        ),
        ("evictions".into(), Json::Int(s.evictions.value())),
        ("writebacks".into(), Json::Int(s.writebacks.value())),
        ("pushed_fills".into(), Json::Int(s.pushed_fills.value())),
        ("push_hits".into(), Json::Int(s.push_hits.value())),
    ])
}

fn xbar_stats_to_json(s: &XbarStats) -> Json {
    Json::Obj(vec![
        ("control_msgs".into(), Json::Int(s.control_msgs)),
        ("data_msgs".into(), Json::Int(s.data_msgs)),
        ("bytes".into(), Json::Int(s.bytes)),
    ])
}

/// Lossless histogram encoding: the non-empty `(floor, count)` bucket
/// pairs plus exact sum/min/max (`sum` as a decimal string — u128
/// exceeds the integer range of the JSON writer). The p50/p95/p99
/// fields are derived conveniences for downstream plotting scripts and
/// are ignored on parse (recomputed from the buckets).
fn histogram_to_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        (
            "buckets".into(),
            Json::Arr(
                h.iter()
                    .map(|(floor, count)| Json::Arr(vec![Json::Int(floor), Json::Int(count)]))
                    .collect(),
            ),
        ),
        ("sum".into(), Json::Str(h.sum().to_string())),
        ("min".into(), Json::Int(h.min().unwrap_or(0))),
        ("max".into(), Json::Int(h.max())),
        ("p50".into(), Json::Int(h.percentile(50.0).unwrap_or(0))),
        ("p95".into(), Json::Int(h.percentile(95.0).unwrap_or(0))),
        ("p99".into(), Json::Int(h.percentile(99.0).unwrap_or(0))),
    ])
}

fn histogram_from_json(json: &Json, name: &'static str) -> Result<Histogram, String> {
    let pairs = json
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing field \"buckets\" in histogram {name:?}"))?
        .iter()
        .map(|pair| {
            let parts = match pair.as_arr() {
                Some([floor, count]) => (floor.as_u64(), count.as_u64()),
                _ => (None, None),
            };
            match parts {
                (Some(floor), Some(count)) => Ok((floor, count)),
                _ => Err(format!("malformed bucket in histogram {name:?}")),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let sum = json
        .get("sum")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing field \"sum\" in histogram {name:?}"))?
        .parse::<u128>()
        .map_err(|e| format!("bad sum in histogram {name:?}: {e}"))?;
    Histogram::restore(
        name,
        pairs,
        sum,
        u64_field(json, "min")?,
        u64_field(json, "max")?,
    )
}

fn latency_to_json(l: &LatencyReport) -> Json {
    Json::Obj(vec![
        (
            LatencyReport::LOAD_TO_USE.into(),
            histogram_to_json(&l.load_to_use),
        ),
        (
            LatencyReport::PUSH_E2E.into(),
            histogram_to_json(&l.push_e2e),
        ),
        (LatencyReport::HUB_TXN.into(), histogram_to_json(&l.hub_txn)),
        (
            LatencyReport::DRAM_QUEUE.into(),
            histogram_to_json(&l.dram_queue),
        ),
    ])
}

fn latency_from_json(json: &Json) -> Result<LatencyReport, String> {
    let field = |name: &'static str| histogram_from_json(&sub(json, name)?, name);
    Ok(LatencyReport {
        load_to_use: field(LatencyReport::LOAD_TO_USE)?,
        push_e2e: field(LatencyReport::PUSH_E2E)?,
        hub_txn: field(LatencyReport::HUB_TXN)?,
        dram_queue: field(LatencyReport::DRAM_QUEUE)?,
    })
}

/// Serializes a stage breakdown: the per-stage cycle totals keyed by
/// stage name (in [`Stage::ALL`] order) plus the per-path counts and
/// end-to-end cycle sums. Public so the perf-baseline harness can
/// embed the same encoding in `BENCH_*.json`.
pub fn stages_to_json(b: &StageBreakdown) -> Json {
    Json::Obj(vec![
        ("loads".into(), Json::Int(b.loads)),
        ("load_cycles".into(), Json::Int(b.load_cycles)),
        ("pushes".into(), Json::Int(b.pushes)),
        ("push_cycles".into(), Json::Int(b.push_cycles)),
        (
            "cycles".into(),
            Json::Obj(
                Stage::ALL
                    .iter()
                    .map(|&s| (s.name().to_string(), Json::Int(b.stage_cycles(s))))
                    .collect(),
            ),
        ),
    ])
}

/// Deserializes a breakdown written by [`stages_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field.
pub fn stages_from_json(json: &Json) -> Result<StageBreakdown, String> {
    let cycles_obj = sub(json, "cycles")?;
    let mut cycles = [0u64; Stage::COUNT];
    for s in Stage::ALL {
        cycles[s.index()] = u64_field(&cycles_obj, s.name())
            .map_err(|e| format!("in stage breakdown cycles: {e}"))?;
    }
    Ok(StageBreakdown {
        cycles,
        loads: u64_field(json, "loads")?,
        load_cycles: u64_field(json, "load_cycles")?,
        pushes: u64_field(json, "pushes")?,
        push_cycles: u64_field(json, "push_cycles")?,
    })
}

/// Serializes a host-time profile: wall-clock nanoseconds plus one
/// `{phase, self_nanos, count}` entry per [`HostPhase`] (all of them,
/// in [`HostPhase::ALL`] order, so the encoding is lossless). Public
/// so the perf-baseline harness embeds the same encoding in
/// `BENCH_*.json`.
pub fn host_to_json(h: &HostProfile) -> Json {
    Json::Obj(vec![
        ("wall_nanos".into(), Json::Int(h.wall_nanos)),
        (
            "phases".into(),
            Json::Arr(
                HostPhase::ALL
                    .iter()
                    .map(|&p| {
                        Json::Obj(vec![
                            ("phase".into(), Json::Str(p.name().into())),
                            ("self_nanos".into(), Json::Int(h.phase_nanos(p))),
                            ("count".into(), Json::Int(h.phase_count(p))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Deserializes a profile written by [`host_to_json`]. Unknown phase
/// names are rejected; absent phases stay zero (forward-compatible
/// with profiles written before a phase existed).
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field.
pub fn host_from_json(json: &Json) -> Result<HostProfile, String> {
    let mut h = HostProfile {
        wall_nanos: u64_field(json, "wall_nanos")?,
        ..HostProfile::default()
    };
    for entry in json
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("missing field \"phases\" in host profile")?
    {
        let name = entry
            .get("phase")
            .and_then(Json::as_str)
            .ok_or("missing field \"phase\" in host profile entry")?;
        let phase = HostPhase::from_name(name)
            .ok_or_else(|| format!("unknown host phase {name:?} in host profile"))?;
        h.self_nanos[phase.index()] =
            u64_field(entry, "self_nanos").map_err(|e| format!("in host phase {name:?}: {e}"))?;
        h.counts[phase.index()] =
            u64_field(entry, "count").map_err(|e| format!("in host phase {name:?}: {e}"))?;
    }
    Ok(h)
}

/// Serializes one ds-scope span record. Public so `ds-serve` streams
/// the same encoding over `/jobs/<id>/events` and in job results.
pub fn span_to_json(s: &SpanRecord) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::Int(s.id)),
        ("parent".into(), Json::Int(s.parent)),
        ("kind".into(), Json::Str(s.kind.name().into())),
        ("label".into(), Json::Str(s.label.clone())),
        ("start_us".into(), Json::Int(s.start_us)),
        ("end_us".into(), Json::Int(s.end_us)),
    ])
}

/// Deserializes a span written by [`span_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field.
pub fn span_from_json(json: &Json) -> Result<SpanRecord, String> {
    let kind_name = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing field \"kind\" in span")?;
    Ok(SpanRecord {
        id: u64_field(json, "id")?,
        parent: u64_field(json, "parent")?,
        kind: SpanKind::parse(kind_name)
            .ok_or_else(|| format!("unknown span kind {kind_name:?}"))?,
        label: json
            .get("label")
            .and_then(Json::as_str)
            .ok_or("missing field \"label\" in span")?
            .to_string(),
        start_us: u64_field(json, "start_us")?,
        end_us: u64_field(json, "end_us")?,
    })
}

/// Serializes a ds-scope span tree as an array of spans, parents
/// before children (the tree's own recorded order).
pub fn scope_to_json(t: &SpanTree) -> Json {
    Json::Arr(t.spans.iter().map(span_to_json).collect())
}

/// Deserializes a tree written by [`scope_to_json`].
///
/// # Errors
///
/// Returns the first span's decode error.
pub fn scope_from_json(json: &Json) -> Result<SpanTree, String> {
    let spans = json.as_arr().ok_or("span tree is not an array")?;
    Ok(SpanTree {
        spans: spans.iter().map(span_from_json).collect::<Result<_, _>>()?,
    })
}

/// Compact epoch encoding: one fixed-order integer array per window.
fn epoch_to_json(s: &EpochSample) -> Json {
    let d = s.delta;
    Json::Arr(
        [
            s.index,
            d.gpu_l2_accesses,
            d.gpu_l2_misses,
            d.cpu_l2_accesses,
            d.cpu_l2_misses,
            d.coh_msgs,
            d.direct_msgs,
            d.gpu_msgs,
            d.dram_accesses,
            d.direct_pushes,
        ]
        .iter()
        .map(|&v| Json::Int(v))
        .collect(),
    )
}

fn epoch_from_json(json: &Json) -> Result<EpochSample, String> {
    let vals = json
        .as_arr()
        .filter(|a| a.len() == 10)
        .ok_or("malformed epoch sample")?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| "malformed epoch sample".into()))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(EpochSample {
        index: vals[0],
        delta: EpochTotals {
            gpu_l2_accesses: vals[1],
            gpu_l2_misses: vals[2],
            cpu_l2_accesses: vals[3],
            cpu_l2_misses: vals[4],
            coh_msgs: vals[5],
            direct_msgs: vals[6],
            gpu_msgs: vals[7],
            dram_accesses: vals[8],
            direct_pushes: vals[9],
        },
    })
}

fn u64_arr(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Int(v)).collect())
}

fn u64_arr_from_json(json: &Json, what: &str) -> Result<Vec<u64>, String> {
    json.as_arr()
        .ok_or_else(|| format!("{what} is not an array"))?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| format!("non-integer in {what}")))
        .collect()
}

/// Serializes one pulse anomaly annotation.
pub fn pulse_anomaly_to_json(a: &PulseAnomaly) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::Str(a.kind.name().into())),
        ("start".into(), Json::Int(a.start)),
        ("end".into(), Json::Int(a.end)),
        ("value".into(), Json::Int(a.value)),
        ("threshold".into(), Json::Int(a.threshold)),
    ])
}

/// Deserializes an anomaly written by [`pulse_anomaly_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field.
pub fn pulse_anomaly_from_json(json: &Json) -> Result<PulseAnomaly, String> {
    let kind_name = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing field \"kind\" in pulse anomaly")?;
    Ok(PulseAnomaly {
        kind: PulseAnomalyKind::parse(kind_name)
            .ok_or_else(|| format!("unknown pulse anomaly kind {kind_name:?}"))?,
        start: u64_field(json, "start")?,
        end: u64_field(json, "end")?,
        value: u64_field(json, "value")?,
        threshold: u64_field(json, "threshold")?,
    })
}

/// Serializes a pulse series: window geometry, the per-window counter
/// and gauge series keyed by their stable names, the final totals and
/// the anomaly annotations. Public so `ds-serve` streams the same
/// encoding in job events.
pub fn pulse_to_json(s: &PulseSeries) -> Json {
    Json::Obj(vec![
        ("base_window".into(), Json::Int(s.base_window)),
        ("window".into(), Json::Int(s.window)),
        ("coalescings".into(), Json::Int(u64::from(s.coalescings))),
        (
            "counters".into(),
            Json::Obj(
                PULSE_COUNTER_NAMES
                    .iter()
                    .zip(&s.counters)
                    .map(|(&name, series)| (name.to_string(), u64_arr(series)))
                    .collect(),
            ),
        ),
        (
            "gauges".into(),
            Json::Obj(
                PULSE_GAUGE_NAMES
                    .iter()
                    .zip(&s.gauges)
                    .map(|(&name, series)| (name.to_string(), u64_arr(series)))
                    .collect(),
            ),
        ),
        (
            "totals".into(),
            Json::Obj(vec![
                ("counters".into(), u64_arr(&s.totals.counters)),
                ("gauges".into(), u64_arr(&s.totals.gauges)),
            ]),
        ),
        (
            "anomalies".into(),
            Json::Arr(s.anomalies.iter().map(pulse_anomaly_to_json).collect()),
        ),
    ])
}

/// Deserializes a series written by [`pulse_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field.
pub fn pulse_from_json(json: &Json) -> Result<PulseSeries, String> {
    fn named_series<const N: usize>(
        json: &Json,
        key: &str,
        names: &[&str; N],
    ) -> Result<Vec<Vec<u64>>, String> {
        let obj = sub(json, key).map_err(|e| format!("{e} in pulse"))?;
        names
            .iter()
            .map(|&name| {
                let series = obj
                    .get(name)
                    .ok_or_else(|| format!("missing pulse {key} series {name:?}"))?;
                u64_arr_from_json(series, &format!("pulse {key} series {name:?}"))
            })
            .collect()
    }
    let totals_obj = sub(json, "totals").map_err(|e| format!("{e} in pulse"))?;
    let mut totals = PulseTotals::default();
    let counters = u64_arr_from_json(&sub(&totals_obj, "counters")?, "pulse totals counters")?;
    let gauges = u64_arr_from_json(&sub(&totals_obj, "gauges")?, "pulse totals gauges")?;
    if counters.len() != totals.counters.len() || gauges.len() != totals.gauges.len() {
        return Err("pulse totals have the wrong arity".into());
    }
    totals.counters.copy_from_slice(&counters);
    totals.gauges.copy_from_slice(&gauges);
    Ok(PulseSeries {
        base_window: u64_field(json, "base_window")?,
        window: u64_field(json, "window")?,
        coalescings: u32::try_from(u64_field(json, "coalescings")?)
            .map_err(|_| "pulse coalescings out of range".to_string())?,
        counters: named_series(json, "counters", &PULSE_COUNTER_NAMES)?,
        gauges: named_series(json, "gauges", &PULSE_GAUGE_NAMES)?,
        totals,
        anomalies: json
            .get("anomalies")
            .and_then(Json::as_arr)
            .ok_or("missing field \"anomalies\" in pulse")?
            .iter()
            .map(pulse_anomaly_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn parse_net(name: &str) -> Option<NetId> {
    [NetId::Coherence, NetId::Direct, NetId::GpuInternal]
        .into_iter()
        .find(|n| n.name() == name)
}

/// Serializes the per-cacheline forensics: efficacy/pathology scalars,
/// the two line histograms, and the three spatial matrices (slices and
/// banks as fixed-order integer rows, links as `[net, src, dst,
/// control, data]` tuples in the report's sorted order).
fn lens_to_json(l: &LensReport) -> Json {
    Json::Obj(vec![
        ("push_useful".into(), Json::Int(l.push_useful)),
        ("push_dead".into(), Json::Int(l.push_dead)),
        ("push_clobbered".into(), Json::Int(l.push_clobbered)),
        ("push_bypasses".into(), Json::Int(l.push_bypasses)),
        ("push_degraded".into(), Json::Int(l.push_degraded)),
        ("write_after_push".into(), Json::Int(l.write_after_push)),
        ("ping_pongs".into(), Json::Int(l.ping_pongs)),
        ("lines_touched".into(), Json::Int(l.lines_touched)),
        ("lines_pushed".into(), Json::Int(l.lines_pushed)),
        (
            LensReport::FIRST_TOUCH.into(),
            histogram_to_json(&l.first_touch),
        ),
        (LensReport::REUSE.into(), histogram_to_json(&l.reuse)),
        (
            "slices".into(),
            Json::Arr(
                l.slices
                    .iter()
                    .map(|s| Json::Arr(s.row().iter().map(|&v| Json::Int(v)).collect()))
                    .collect(),
            ),
        ),
        (
            "banks".into(),
            Json::Arr(
                l.banks
                    .iter()
                    .map(|b| Json::Arr(b.row().iter().map(|&v| Json::Int(v)).collect()))
                    .collect(),
            ),
        ),
        (
            "links".into(),
            Json::Arr(
                l.links
                    .iter()
                    .map(|k| {
                        Json::Arr(vec![
                            Json::Str(k.net.name().into()),
                            Json::Int(u64::from(k.src)),
                            Json::Int(u64::from(k.dst)),
                            Json::Int(k.control),
                            Json::Int(k.data),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn lens_from_json(json: &Json) -> Result<LensReport, String> {
    fn rows<const N: usize>(json: &Json, key: &str) -> Result<Vec<[u64; N]>, String> {
        json.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing field {key:?} in lens"))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .filter(|r| r.len() == N)
                    .and_then(|r| {
                        let mut out = [0u64; N];
                        for (slot, v) in out.iter_mut().zip(r) {
                            *slot = v.as_u64()?;
                        }
                        Some(out)
                    })
                    .ok_or_else(|| format!("malformed {key} row in lens"))
            })
            .collect()
    }
    let slices = rows::<9>(json, "slices")?
        .into_iter()
        .map(|[hits, misses, demand_fills, push_fills, push_hits, push_bypasses, evictions, writebacks, invalidations]| {
            SliceTraffic {
                hits,
                misses,
                demand_fills,
                push_fills,
                push_hits,
                push_bypasses,
                evictions,
                writebacks,
                invalidations,
            }
        })
        .collect();
    let banks = rows::<3>(json, "banks")?
        .into_iter()
        .map(|[reads, writes, row_hits]| BankTraffic {
            reads,
            writes,
            row_hits,
        })
        .collect();
    let links = json
        .get("links")
        .and_then(Json::as_arr)
        .ok_or("missing field \"links\" in lens")?
        .iter()
        .map(|row| {
            let parts = row.as_arr().filter(|r| r.len() == 5);
            let link = parts.and_then(|r| {
                Some(LinkTraffic {
                    net: parse_net(r[0].as_str()?)?,
                    src: u8::try_from(r[1].as_u64()?).ok()?,
                    dst: u8::try_from(r[2].as_u64()?).ok()?,
                    control: r[3].as_u64()?,
                    data: r[4].as_u64()?,
                })
            });
            link.ok_or_else(|| "malformed link row in lens".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(LensReport {
        push_useful: u64_field(json, "push_useful")?,
        push_dead: u64_field(json, "push_dead")?,
        push_clobbered: u64_field(json, "push_clobbered")?,
        push_bypasses: u64_field(json, "push_bypasses")?,
        push_degraded: u64_field(json, "push_degraded")?,
        write_after_push: u64_field(json, "write_after_push")?,
        ping_pongs: u64_field(json, "ping_pongs")?,
        lines_touched: u64_field(json, "lines_touched")?,
        lines_pushed: u64_field(json, "lines_pushed")?,
        first_touch: histogram_from_json(
            &sub(json, LensReport::FIRST_TOUCH)?,
            LensReport::FIRST_TOUCH,
        )?,
        reuse: histogram_from_json(&sub(json, LensReport::REUSE)?, LensReport::REUSE)?,
        slices,
        banks,
        links,
    })
}

/// Serializes a full run report. The `host` profile, the `scope` span
/// tree and the `pulse` series are emitted only when present, so
/// reports from unprofiled, unscoped, unpulsed runs stay
/// byte-identical to the older encodings.
pub fn report_to_json(r: &RunReport) -> Json {
    let mut fields = vec![
        ("mode".into(), Json::Str(mode_name(r.mode))),
        ("total_cycles".into(), Json::Int(r.total_cycles.as_u64())),
        ("gpu_l2".into(), cache_stats_to_json(&r.gpu_l2)),
        ("cpu_l2".into(), cache_stats_to_json(&r.cpu_l2)),
        ("gpu_l1".into(), cache_stats_to_json(&r.gpu_l1)),
        ("cpu_l1".into(), cache_stats_to_json(&r.cpu_l1)),
        ("coh_net".into(), xbar_stats_to_json(&r.coh_net)),
        ("direct_net".into(), xbar_stats_to_json(&r.direct_net)),
        ("gpu_net".into(), xbar_stats_to_json(&r.gpu_net)),
        ("dram_reads".into(), Json::Int(r.dram_reads)),
        ("dram_writes".into(), Json::Int(r.dram_writes)),
        ("direct_pushes".into(), Json::Int(r.direct_pushes)),
        (
            "store_buffer_stalls".into(),
            Json::Int(r.store_buffer_stalls),
        ),
        ("kernels_run".into(), Json::Int(r.kernels_run)),
        ("warps_completed".into(), Json::Int(r.warps_completed)),
        (
            "first_kernel_start".into(),
            Json::Int(r.first_kernel_start.as_u64()),
        ),
        (
            "last_kernel_end".into(),
            Json::Int(r.last_kernel_end.as_u64()),
        ),
        (
            "kernel_spans".into(),
            Json::Arr(
                r.kernel_spans
                    .iter()
                    .map(|&(s, e)| Json::Arr(vec![Json::Int(s.as_u64()), Json::Int(e.as_u64())]))
                    .collect(),
            ),
        ),
        ("push_bypasses".into(), Json::Int(r.push_bypasses)),
        ("hub_transactions".into(), Json::Int(r.hub_transactions)),
        ("hub_conflicts".into(), Json::Int(r.hub_conflicts)),
        ("hub_probes".into(), Json::Int(r.hub_probes)),
        ("dram_row_hits".into(), Json::Int(r.dram_row_hits)),
        ("pushes_attempted".into(), Json::Int(r.pushes_attempted)),
        ("pushes_retried".into(), Json::Int(r.pushes_retried)),
        ("pushes_degraded".into(), Json::Int(r.pushes_degraded)),
        ("faults_injected".into(), Json::Int(r.faults_injected)),
        ("latency".into(), latency_to_json(&r.latency)),
        ("stages".into(), stages_to_json(&r.stages)),
        ("lens".into(), lens_to_json(&r.lens)),
        ("epoch_window".into(), Json::Int(r.epoch_window)),
        (
            "epochs".into(),
            Json::Arr(r.epochs.iter().map(epoch_to_json).collect()),
        ),
        ("events".into(), Json::Int(r.events)),
    ];
    if let Some(host) = &r.host {
        fields.push(("host".into(), host_to_json(host)));
    }
    if let Some(scope) = &r.scope {
        fields.push(("scope".into(), scope_to_json(scope)));
    }
    if let Some(pulse) = &r.pulse {
        fields.push(("pulse".into(), pulse_to_json(pulse)));
    }
    Json::Obj(fields)
}

/// Serializes a comparison: coordinates, both reports, and the derived
/// figure metrics for plotting convenience.
pub fn comparison_to_json(c: &Comparison) -> Json {
    let (miss_ccsm, miss_ds) = c.miss_rates();
    Json::Obj(vec![
        ("code".into(), Json::Str(c.code.clone())),
        ("input".into(), Json::Str(c.input.to_string())),
        ("speedup".into(), Json::Float(c.speedup())),
        ("speedup_percent".into(), Json::Float(c.speedup_percent())),
        ("miss_rate_ccsm".into(), Json::Float(miss_ccsm)),
        ("miss_rate_ds".into(), Json::Float(miss_ds)),
        ("ccsm".into(), report_to_json(&c.ccsm)),
        ("direct_store".into(), report_to_json(&c.direct_store)),
    ])
}

fn u64_field(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn cache_stats_from_json(json: &Json) -> Result<CacheStats, String> {
    let mut s = CacheStats::new();
    s.hits.add(u64_field(json, "hits")?);
    s.misses.add(u64_field(json, "misses")?);
    s.compulsory_misses
        .add(u64_field(json, "compulsory_misses")?);
    s.evictions.add(u64_field(json, "evictions")?);
    s.writebacks.add(u64_field(json, "writebacks")?);
    s.pushed_fills.add(u64_field(json, "pushed_fills")?);
    s.push_hits.add(u64_field(json, "push_hits")?);
    Ok(s)
}

fn xbar_stats_from_json(json: &Json) -> Result<XbarStats, String> {
    Ok(XbarStats {
        control_msgs: u64_field(json, "control_msgs")?,
        data_msgs: u64_field(json, "data_msgs")?,
        bytes: u64_field(json, "bytes")?,
    })
}

fn sub(json: &Json, key: &str) -> Result<Json, String> {
    json.get(key)
        .cloned()
        .ok_or_else(|| format!("missing field {key:?}"))
}

/// Deserializes a report written by [`report_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or mistyped field.
pub fn report_from_json(json: &Json) -> Result<RunReport, String> {
    let mode_str = json
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing field \"mode\"")?;
    let mode = parse_mode(mode_str).ok_or_else(|| format!("unknown mode {mode_str:?}"))?;
    let kernel_spans = json
        .get("kernel_spans")
        .and_then(Json::as_arr)
        .ok_or("missing field \"kernel_spans\"")?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().filter(|p| p.len() == 2);
            let (s, e) = match pair {
                Some([s, e]) => (s.as_u64(), e.as_u64()),
                _ => (None, None),
            };
            match (s, e) {
                (Some(s), Some(e)) => Ok((Cycle::new(s), Cycle::new(e))),
                _ => Err("malformed kernel span".to_string()),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RunReport {
        mode,
        total_cycles: Cycle::new(u64_field(json, "total_cycles")?),
        gpu_l2: cache_stats_from_json(&sub(json, "gpu_l2")?)?,
        cpu_l2: cache_stats_from_json(&sub(json, "cpu_l2")?)?,
        gpu_l1: cache_stats_from_json(&sub(json, "gpu_l1")?)?,
        cpu_l1: cache_stats_from_json(&sub(json, "cpu_l1")?)?,
        coh_net: xbar_stats_from_json(&sub(json, "coh_net")?)?,
        direct_net: xbar_stats_from_json(&sub(json, "direct_net")?)?,
        gpu_net: xbar_stats_from_json(&sub(json, "gpu_net")?)?,
        dram_reads: u64_field(json, "dram_reads")?,
        dram_writes: u64_field(json, "dram_writes")?,
        direct_pushes: u64_field(json, "direct_pushes")?,
        store_buffer_stalls: u64_field(json, "store_buffer_stalls")?,
        kernels_run: u64_field(json, "kernels_run")?,
        warps_completed: u64_field(json, "warps_completed")?,
        first_kernel_start: Cycle::new(u64_field(json, "first_kernel_start")?),
        last_kernel_end: Cycle::new(u64_field(json, "last_kernel_end")?),
        kernel_spans,
        push_bypasses: u64_field(json, "push_bypasses")?,
        hub_transactions: u64_field(json, "hub_transactions")?,
        hub_conflicts: u64_field(json, "hub_conflicts")?,
        hub_probes: u64_field(json, "hub_probes")?,
        dram_row_hits: u64_field(json, "dram_row_hits")?,
        pushes_attempted: u64_field(json, "pushes_attempted")?,
        pushes_retried: u64_field(json, "pushes_retried")?,
        pushes_degraded: u64_field(json, "pushes_degraded")?,
        faults_injected: u64_field(json, "faults_injected")?,
        latency: latency_from_json(&sub(json, "latency")?)?,
        stages: stages_from_json(&sub(json, "stages")?)?,
        lens: lens_from_json(&sub(json, "lens")?)?,
        epochs: json
            .get("epochs")
            .and_then(Json::as_arr)
            .ok_or("missing field \"epochs\"")?
            .iter()
            .map(epoch_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        epoch_window: u64_field(json, "epoch_window")?,
        events: u64_field(json, "events")?,
        host: match json.get("host") {
            Some(h) => Some(host_from_json(h)?),
            None => None,
        },
        scope: match json.get("scope") {
            Some(s) => Some(scope_from_json(s)?),
            None => None,
        },
        pulse: match json.get("pulse") {
            Some(p) => Some(pulse_from_json(p)?),
            None => None,
        },
    })
}

/// Header row matching [`report_csv_row`] (the `export_csv` schema).
/// The `stage_*` columns follow [`Stage::ALL`] order, then the four
/// per-path aggregates.
pub const REPORT_CSV_HEADER: &str = "benchmark,suite,shared_memory,input,mode,total_cycles,\
     gpu_l2_accesses,gpu_l2_misses,gpu_l2_miss_rate,gpu_l2_compulsory,push_hits,\
     direct_pushes,coh_msgs,direct_msgs,gpu_msgs,dram_reads,dram_writes,\
     load_to_use_p50,load_to_use_p95,load_to_use_p99,\
     stage_sm_l1,stage_gpu_noc_req,stage_slice_queue,stage_mshr_stall,stage_mshr_wait,\
     stage_coh_req,stage_hub_dir,stage_dram_queue,stage_dram_service,stage_resp_noc,\
     stage_slice_to_sm,stage_sb_wait,stage_direct_noc,stage_direct_ack,\
     stage_loads,stage_load_cycles,stage_pushes,stage_push_cycles,\
     push_eff_useful,push_eff_dead,push_eff_clobbered,\
     line_write_after_push,line_ping_pongs,line_lines_touched,line_lines_pushed,\
     line_first_touch_p50,line_first_touch_p99,line_reuse_p50,\
     pushes_retried,pushes_degraded,faults_injected,\
     pulse_windows,pulse_window_cycles,pulse_anomalies";

/// One per-run CSV row; `suite` / `shared_memory` come from the
/// benchmark's Table II metadata.
pub fn report_csv_row(
    code: &str,
    suite: &str,
    shared_memory: bool,
    input: InputSize,
    r: &RunReport,
) -> String {
    let mut row = format!(
        "{},{},{},{},{},{},{},{},{:.6},{},{},{},{},{},{},{},{},{},{},{}",
        code,
        suite,
        shared_memory,
        input,
        r.mode,
        r.total_cycles.as_u64(),
        r.gpu_l2.accesses(),
        r.gpu_l2.misses.value(),
        r.gpu_l2_miss_rate(),
        r.gpu_l2_compulsory_misses(),
        r.gpu_l2.push_hits.value(),
        r.direct_pushes,
        r.coh_net.total_msgs(),
        r.direct_net.total_msgs(),
        r.gpu_net.total_msgs(),
        r.dram_reads,
        r.dram_writes,
        r.latency.load_to_use.percentile(50.0).unwrap_or(0),
        r.latency.load_to_use.percentile(95.0).unwrap_or(0),
        r.latency.load_to_use.percentile(99.0).unwrap_or(0)
    );
    for s in Stage::ALL {
        row.push_str(&format!(",{}", r.stages.stage_cycles(s)));
    }
    row.push_str(&format!(
        ",{},{},{},{}",
        r.stages.loads, r.stages.load_cycles, r.stages.pushes, r.stages.push_cycles
    ));
    let l = &r.lens;
    row.push_str(&format!(
        ",{},{},{},{},{},{},{},{},{},{}",
        l.push_useful,
        l.push_dead,
        l.push_clobbered,
        l.write_after_push,
        l.ping_pongs,
        l.lines_touched,
        l.lines_pushed,
        l.first_touch.percentile(50.0).unwrap_or(0),
        l.first_touch.percentile(99.0).unwrap_or(0),
        l.reuse.percentile(50.0).unwrap_or(0)
    ));
    row.push_str(&format!(
        ",{},{},{}",
        r.pushes_retried, r.pushes_degraded, r.faults_injected
    ));
    // Pulse summary columns (all zero when sampling was off).
    let (windows, window_cycles, anomalies) = r
        .pulse
        .as_ref()
        .map(|p| (p.len() as u64, p.window, p.anomalies.len() as u64))
        .unwrap_or((0, 0, 0));
    row.push_str(&format!(",{windows},{window_cycles},{anomalies}"));
    row
}

/// Header row matching [`comparison_csv_row`].
pub const COMPARISON_CSV_HEADER: &str = "benchmark,input,speedup,speedup_percent,\
     ccsm_cycles,ds_cycles,ccsm_miss_rate,ds_miss_rate,ccsm_compulsory,ds_compulsory";

/// One comparison CSV row (the Fig. 4 / Fig. 5 metrics).
pub fn comparison_csv_row(c: &Comparison) -> String {
    let (miss_ccsm, miss_ds) = c.miss_rates();
    let (comp_ccsm, comp_ds) = c.compulsory_misses();
    format!(
        "{},{},{:.6},{:.4},{},{},{:.6},{:.6},{},{}",
        c.code,
        c.input,
        c.speedup(),
        c.speedup_percent(),
        c.ccsm.total_cycles.as_u64(),
        c.direct_store.total_cycles.as_u64(),
        miss_ccsm,
        miss_ds,
        comp_ccsm,
        comp_ds
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_cache::MissKind;

    fn sample_report(mode: Mode) -> RunReport {
        let mut gpu_l2 = CacheStats::new();
        gpu_l2.record_hit();
        gpu_l2.record_miss(MissKind::Compulsory);
        gpu_l2.pushed_fills.add(9);
        let mut latency = LatencyReport::new();
        latency.load_to_use.record(120);
        latency.load_to_use.record(641);
        latency.hub_txn.record(77);
        latency.dram_queue.record(0);
        let mut stages = StageBreakdown::new();
        stages.cycles[Stage::SmL1.index()] = 100;
        stages.cycles[Stage::HubDir.index()] = 511;
        stages.cycles[Stage::SliceToSm.index()] = 150;
        stages.cycles[Stage::SbWait.index()] = 40;
        stages.loads = 2;
        stages.load_cycles = 761;
        stages.pushes = 1;
        stages.push_cycles = 40;
        let mut lens = LensReport::empty();
        lens.push_useful = 6;
        lens.push_dead = 2;
        lens.push_clobbered = 1;
        lens.push_bypasses = 5;
        lens.push_degraded = 1;
        lens.write_after_push = 1;
        lens.ping_pongs = 1;
        lens.lines_touched = 12;
        lens.lines_pushed = 8;
        lens.first_touch.record(35);
        lens.first_touch.record(90);
        lens.reuse.record(128);
        lens.slices = vec![
            SliceTraffic {
                hits: 3,
                misses: 1,
                demand_fills: 1,
                push_fills: 9,
                push_hits: 2,
                push_bypasses: 5,
                evictions: 1,
                writebacks: 0,
                invalidations: 2,
            },
            SliceTraffic::default(),
        ];
        lens.banks = vec![
            BankTraffic {
                reads: 7,
                writes: 3,
                row_hits: 4,
            },
            BankTraffic::default(),
        ];
        lens.links = vec![
            LinkTraffic {
                net: NetId::Coherence,
                src: 0,
                dst: 5,
                control: 10,
                data: 20,
            },
            LinkTraffic {
                net: NetId::Direct,
                src: 0,
                dst: 1,
                control: 1,
                data: 42,
            },
        ];
        RunReport {
            mode,
            total_cycles: Cycle::new(123_456),
            gpu_l2,
            cpu_l2: CacheStats::new(),
            gpu_l1: CacheStats::new(),
            cpu_l1: CacheStats::new(),
            coh_net: XbarStats {
                control_msgs: 10,
                data_msgs: 20,
                bytes: 30,
            },
            direct_net: XbarStats::default(),
            gpu_net: XbarStats::default(),
            dram_reads: 7,
            dram_writes: 3,
            direct_pushes: 42,
            store_buffer_stalls: 1,
            kernels_run: 2,
            warps_completed: 64,
            first_kernel_start: Cycle::new(100),
            last_kernel_end: Cycle::new(9000),
            kernel_spans: vec![
                (Cycle::new(100), Cycle::new(4000)),
                (Cycle::new(4100), Cycle::new(9000)),
            ],
            push_bypasses: 5,
            hub_transactions: 11,
            hub_conflicts: 2,
            hub_probes: 33,
            dram_row_hits: 4,
            pushes_attempted: 43,
            pushes_retried: 2,
            pushes_degraded: 1,
            faults_injected: 6,
            latency,
            stages,
            lens,
            epochs: vec![
                EpochSample {
                    index: 0,
                    delta: EpochTotals {
                        gpu_l2_accesses: 8,
                        gpu_l2_misses: 2,
                        direct_pushes: 1,
                        ..EpochTotals::default()
                    },
                },
                EpochSample {
                    index: 1,
                    delta: EpochTotals::default(),
                },
            ],
            epoch_window: 1000,
            events: 99_999,
            host: None,
            scope: None,
            pulse: None,
        }
    }

    fn sample_pulse() -> PulseSeries {
        use ds_probe::pulse::{ctr, PulseConfig, PulseSampler};
        let mut sampler = PulseSampler::new(PulseConfig::with_window(1000));
        let mut t = PulseTotals::default();
        t.counters[ctr::GPU_L2_ACCESSES] = 8;
        t.counters[ctr::PUSHES_RETRIED] = 20;
        t.gauges[1] = 3;
        sampler.observe(1000, t);
        t.counters[ctr::GPU_L2_ACCESSES] = 11;
        t.counters[ctr::PUSHES_RETRIED] = 21;
        sampler.finish(1500, t);
        sampler.into_series()
    }

    fn sample_scope() -> SpanTree {
        SpanTree {
            spans: vec![
                SpanRecord {
                    id: 41,
                    parent: 0,
                    kind: SpanKind::Task,
                    label: "VA small DS".into(),
                    start_us: 0,
                    end_us: 5_000,
                },
                SpanRecord {
                    id: 42,
                    parent: 41,
                    kind: SpanKind::QueueWait,
                    label: String::new(),
                    start_us: 0,
                    end_us: 120,
                },
                SpanRecord {
                    id: 43,
                    parent: 41,
                    kind: SpanKind::SimRun,
                    label: "sim".into(),
                    start_us: 120,
                    end_us: 5_000,
                },
            ],
        }
    }

    fn sample_host() -> HostProfile {
        let mut host = HostProfile {
            wall_nanos: 5_000_000,
            ..HostProfile::default()
        };
        for (i, phase) in HostPhase::ALL.iter().enumerate() {
            host.self_nanos[phase.index()] = 1_000 * (i as u64 + 1);
            host.counts[phase.index()] = 10 + i as u64;
        }
        host
    }

    #[test]
    fn report_json_round_trip_is_exact() {
        for mode in [Mode::Ccsm, Mode::DirectStore, Mode::DirectStoreOnly] {
            let original = sample_report(mode);
            let text = report_to_json(&original).pretty();
            let parsed = crate::json::parse(&text).unwrap();
            let back = report_from_json(&parsed).unwrap();
            assert_eq!(format!("{original:?}"), format!("{back:?}"), "{mode}");
        }
    }

    #[test]
    fn host_profile_round_trips_exactly_and_is_optional() {
        let mut original = sample_report(Mode::DirectStore);
        original.host = Some(sample_host());
        let text = report_to_json(&original).pretty();
        assert!(text.contains("\"host\""));
        let parsed = crate::json::parse(&text).unwrap();
        let back = report_from_json(&parsed).unwrap();
        assert_eq!(format!("{original:?}"), format!("{back:?}"));

        // Unprofiled reports omit the key entirely and decode to None.
        let bare = report_to_json(&sample_report(Mode::DirectStore)).pretty();
        assert!(!bare.contains("\"host\""));
        let parsed = crate::json::parse(&bare).unwrap();
        assert!(report_from_json(&parsed).unwrap().host.is_none());
    }

    #[test]
    fn scope_tree_round_trips_exactly_and_is_optional() {
        let mut original = sample_report(Mode::DirectStore);
        original.scope = Some(sample_scope());
        let text = report_to_json(&original).pretty();
        assert!(text.contains("\"scope\""));
        let parsed = crate::json::parse(&text).unwrap();
        let back = report_from_json(&parsed).unwrap();
        assert_eq!(format!("{original:?}"), format!("{back:?}"));

        // Unscoped reports omit the key entirely and decode to None —
        // the fig4 bit-identity guarantee rests on this.
        let bare = report_to_json(&sample_report(Mode::DirectStore)).pretty();
        assert!(!bare.contains("\"scope\""));
        let parsed = crate::json::parse(&bare).unwrap();
        assert!(report_from_json(&parsed).unwrap().scope.is_none());
    }

    #[test]
    fn pulse_series_round_trips_exactly_and_is_optional() {
        let mut original = sample_report(Mode::DirectStore);
        original.pulse = Some(sample_pulse());
        let text = report_to_json(&original).pretty();
        assert!(text.contains("\"pulse\""));
        assert!(text.contains("\"retry-burst\""), "anomaly rides along");
        let parsed = crate::json::parse(&text).unwrap();
        let back = report_from_json(&parsed).unwrap();
        assert_eq!(format!("{original:?}"), format!("{back:?}"));
        back.pulse.unwrap().check_conservation().unwrap();

        // Unpulsed reports omit the key entirely and decode to None —
        // the cache byte-identity guarantee rests on this.
        let bare = report_to_json(&sample_report(Mode::DirectStore)).pretty();
        assert!(!bare.contains("\"pulse\""));
        let parsed = crate::json::parse(&bare).unwrap();
        assert!(report_from_json(&parsed).unwrap().pulse.is_none());
    }

    #[test]
    fn pulse_anomaly_from_json_rejects_unknown_kind() {
        let series = sample_pulse();
        let mut json = pulse_anomaly_to_json(&series.anomalies[0]);
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "kind" {
                    *v = Json::Str("gremlin".into());
                }
            }
        }
        let err = pulse_anomaly_from_json(&json).unwrap_err();
        assert!(err.contains("gremlin"), "{err}");
    }

    #[test]
    fn csv_pulse_columns_summarize_the_series() {
        let mut r = sample_report(Mode::DirectStore);
        let row = report_csv_row("VA", "Rodinia", false, InputSize::Small, &r);
        assert!(row.ends_with(",0,0,0"), "pulse off: zero columns ({row})");
        r.pulse = Some(sample_pulse());
        let row = report_csv_row("VA", "Rodinia", false, InputSize::Small, &r);
        // Two windows; retry burst (window 0) plus livelock precursor
        // (second ack-free retrying window) = two anomalies.
        assert!(row.ends_with(",2,1000,2"), "{row}");
        assert_eq!(row.split(',').count(), REPORT_CSV_HEADER.split(',').count());
    }

    #[test]
    fn span_from_json_rejects_unknown_kind() {
        let mut json = span_to_json(&sample_scope().spans[0]);
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "kind" {
                    *v = Json::Str("warp".into());
                }
            }
        }
        let err = span_from_json(&json).unwrap_err();
        assert!(err.contains("warp"), "{err}");
    }

    #[test]
    fn host_from_json_rejects_unknown_phase() {
        let mut json = host_to_json(&sample_host());
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "phases" {
                    if let Json::Arr(entries) = v {
                        if let Json::Obj(entry) = &mut entries[0] {
                            entry[0].1 = Json::Str("warp_scheduler".into());
                        }
                    }
                }
            }
        }
        let err = host_from_json(&json).unwrap_err();
        assert!(err.contains("warp_scheduler"), "{err}");
    }

    #[test]
    fn report_from_json_names_the_bad_field() {
        let mut json = report_to_json(&sample_report(Mode::Ccsm));
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "dram_reads");
        }
        let err = report_from_json(&json).unwrap_err();
        assert!(err.contains("dram_reads"), "{err}");
    }

    #[test]
    fn mode_and_input_names_round_trip() {
        for mode in [Mode::Ccsm, Mode::DirectStore, Mode::DirectStoreOnly] {
            assert_eq!(parse_mode(&mode_name(mode)), Some(mode));
        }
        for input in [InputSize::Small, InputSize::Big] {
            assert_eq!(parse_input(&input.to_string()), Some(input));
        }
        assert_eq!(parse_mode("bogus"), None);
        assert_eq!(parse_input("bogus"), None);
    }

    #[test]
    fn csv_rows_match_headers() {
        let r = sample_report(Mode::DirectStore);
        let row = report_csv_row("VA", "Rodinia", false, InputSize::Small, &r);
        assert_eq!(row.split(',').count(), REPORT_CSV_HEADER.split(',').count());
        assert!(row.starts_with("VA,Rodinia,false,small,DS,123456,"));

        let c = Comparison {
            code: "VA".into(),
            input: InputSize::Small,
            ccsm: sample_report(Mode::Ccsm),
            direct_store: r,
        };
        let crow = comparison_csv_row(&c);
        assert_eq!(
            crow.split(',').count(),
            COMPARISON_CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn comparison_json_carries_figure_metrics() {
        let c = Comparison {
            code: "NN".into(),
            input: InputSize::Big,
            ccsm: sample_report(Mode::Ccsm),
            direct_store: sample_report(Mode::DirectStore),
        };
        let json = comparison_to_json(&c);
        assert_eq!(json.get("code").unwrap().as_str(), Some("NN"));
        assert_eq!(json.get("input").unwrap().as_str(), Some("big"));
        assert!(json.get("speedup").is_some());
        assert!(json.get("ccsm").unwrap().get("total_cycles").is_some());
    }
}
