//! Quickstart: run one benchmark through the full paper pipeline.
//!
//! The pipeline translates the benchmark's mini-CUDA source with the
//! automatic translator (§III.C), lays its arrays out in the
//! GPU-homed window, and simulates the workload under both CCSM and
//! direct store on the Table I system.
//!
//! Run with: `cargo run --example quickstart`

use direct_store::core::{InputSize, Pipeline};
use direct_store::workloads::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let va = catalog::by_code("VA").expect("Table II lists vector-add");
    println!(
        "benchmark: {} ({}, shared memory: {})",
        va.name(),
        va.suite(),
        if va.uses_shared_memory() { "yes" } else { "no" }
    );

    let pipeline = Pipeline::paper_default();
    let outcome = pipeline.run_comparison(&va, InputSize::Small)?;

    println!();
    println!("CCSM        : {}", outcome.ccsm);
    println!();
    println!("direct store: {}", outcome.direct_store);
    println!();
    println!(
        "speedup: {:+.2}%   GPU L2 miss rate: {:.2}% -> {:.2}%",
        outcome.speedup_percent(),
        outcome.miss_rates().0 * 100.0,
        outcome.miss_rates().1 * 100.0
    );
    let (cc, cd) = outcome.compulsory_misses();
    println!("compulsory misses: {cc} -> {cd}");
    Ok(())
}
