//! Reproduce the full evaluation at one command: every Table II
//! benchmark, both input sizes, speedup and miss rates side by side.
//!
//! This is the long-running "everything" example; the `ds-bench`
//! binaries produce the same data figure by figure.
//!
//! Run with: `cargo run --release --example full_table [small|big]`

use direct_store::core::{InputSize, Pipeline};
use direct_store::workloads::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1);
    let sizes: Vec<InputSize> = match arg.as_deref() {
        Some("small") => vec![InputSize::Small],
        Some("big") => vec![InputSize::Big],
        _ => vec![InputSize::Small, InputSize::Big],
    };
    let pipeline = Pipeline::paper_default();
    for input in sizes {
        println!();
        println!(
            "{:<5} {:>9} {:>12} {:>12} {:>14}",
            "name", "speedup", "miss(ccsm)", "miss(ds)", "pushes"
        );
        for b in catalog::all() {
            let c = pipeline.run_comparison(&b, input)?;
            let (mc, md) = c.miss_rates();
            println!(
                "{:<5} {:>8.2}% {:>11.2}% {:>11.2}% {:>14}",
                c.code,
                c.speedup_percent(),
                mc * 100.0,
                md * 100.0,
                c.direct_store.direct_pushes
            );
        }
    }
    Ok(())
}
