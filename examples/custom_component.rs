//! Building a custom simulation on the `ds-sim` kernel: a two-level
//! cache in front of a fixed-latency memory, assembled from [`Mesh`]
//! components.
//!
//! This shows the simulation substrate is reusable beyond the paper's
//! system — the same `Component`/`Outbox` pattern the unit tests use to
//! model protocol pieces in isolation.
//!
//! Run with: `cargo run --example custom_component`

use direct_store::cache::{CacheArray, CacheGeometry, LineState, ReplacementPolicy};
use direct_store::mem::LineAddr;
use direct_store::sim::{Component, Cycle, Mesh, NodeId, Outbox};

#[derive(Debug, Clone, Copy)]
enum Msg {
    /// A load request for a line; `reply_to` is the original requester.
    Req { line: u64, reply_to: NodeId },
    /// The response back to the requester.
    Resp {
        /// The completed line (unused by this simple driver).
        #[allow(dead_code)]
        line: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Valid;
impl LineState for Valid {
    fn is_valid(&self) -> bool {
        true
    }
}

/// A cache level: hit → respond to the original requester; miss → fill
/// and forward to the next level.
struct Level {
    array: CacheArray<Valid>,
    next: NodeId,
    latency: u64,
    hits: u64,
    misses: u64,
}

impl Component<Msg> for Level {
    fn handle(&mut self, _now: Cycle, msg: Msg, _from: NodeId, out: &mut Outbox<Msg>) {
        if let Msg::Req { line, reply_to } = msg {
            let addr = LineAddr::from_index(line);
            if self.array.access(addr).is_some() {
                self.hits += 1;
                out.send_after(self.latency, reply_to, Msg::Resp { line });
            } else {
                self.misses += 1;
                self.array.fill(addr, Valid);
                out.send_after(self.latency, self.next, Msg::Req { line, reply_to });
            }
        }
    }
}

/// The memory endpoint: always responds after a fixed latency.
struct Memory {
    latency: u64,
    accesses: u64,
}

impl Component<Msg> for Memory {
    fn handle(&mut self, _now: Cycle, msg: Msg, _from: NodeId, out: &mut Outbox<Msg>) {
        if let Msg::Req { line, reply_to } = msg {
            self.accesses += 1;
            out.send_after(self.latency, reply_to, Msg::Resp { line });
        }
    }
}

/// The requester: issues a strided loop over a 32 KB footprint, one
/// request per response (a dependent chain).
struct Driver {
    me: NodeId,
    l1: NodeId,
    remaining: u64,
    cursor: u64,
    finished_at: Cycle,
}

impl Driver {
    const FOOTPRINT_LINES: u64 = 256; // 32 KB
    const STRIDE: u64 = 7;

    fn issue(&mut self, out: &mut Outbox<Msg>) {
        self.remaining -= 1;
        let line = self.cursor;
        self.cursor = (self.cursor + Self::STRIDE) % Self::FOOTPRINT_LINES;
        out.send_after(
            1,
            self.l1,
            Msg::Req {
                line,
                reply_to: self.me,
            },
        );
    }
}

impl Component<Msg> for Driver {
    fn handle(&mut self, now: Cycle, _msg: Msg, _from: NodeId, out: &mut Outbox<Msg>) {
        self.finished_at = now;
        if self.remaining > 0 {
            self.issue(out);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mesh: Mesh<Msg> = Mesh::new();
    let memory = mesh.add(Memory {
        latency: 100,
        accesses: 0,
    });
    let l2 = mesh.add(Level {
        array: CacheArray::new(CacheGeometry::new(64 * 1024, 8)?, ReplacementPolicy::Lru),
        next: memory,
        latency: 12,
        hits: 0,
        misses: 0,
    });
    let l1 = mesh.add(Level {
        array: CacheArray::new(CacheGeometry::new(4 * 1024, 2)?, ReplacementPolicy::Lru),
        next: l2,
        latency: 2,
        hits: 0,
        misses: 0,
    });
    let driver = mesh.add_cyclic(|me| Driver {
        me,
        l1,
        remaining: 10_000,
        cursor: 0,
        finished_at: Cycle::ZERO,
    });

    // Kick the chain: deliver a dummy response to the driver.
    mesh.inject(Cycle::ZERO, driver, driver, Msg::Resp { line: 0 });
    let end = mesh.run_to_completion();

    println!("10,000 dependent strided loads over 32 KB finished {end}");
    println!("(footprint fits the 64 KB L2 but not the 4 KB L1, so the steady");
    println!(" state is L1 misses served by L2 hits — memory sees the footprint");
    println!(" exactly once)");
    Ok(())
}
