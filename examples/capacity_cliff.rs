//! The capacity cliff: why direct store's benefit shrinks when the
//! working set outgrows the GPU L2 (paper §IV.C, the MM/MT
//! small-vs-big discussion).
//!
//! Sweeps the produced footprint across the 2 MB GPU L2 capacity and
//! reports the speedup at each point. Pushes beyond capacity evict
//! earlier pushes before the GPU reads them, so the first-access-hit
//! benefit decays.
//!
//! Run with: `cargo run --release --example capacity_cliff`

use direct_store::core::{Mode, System, SystemConfig};
use direct_store::cpu::{CpuOp, Program};
use direct_store::gpu::{KernelTrace, WarpOp};
use direct_store::mem::VirtAddr;

fn run_footprint(lines: u64, mode: Mode) -> u64 {
    let base = VirtAddr::new(0x7f00_0000_0000);
    let mut program = Program::new();
    program.store_array(base, lines * 128, 8);
    program.push(CpuOp::Launch(0));
    program.push(CpuOp::WaitGpu);

    let mut kernel = KernelTrace::new("consume");
    let warps = (lines / 8).clamp(32, 512);
    let per = lines.div_ceil(warps);
    for w in 0..warps {
        let start = (w * per).min(lines);
        let count = ((w + 1) * per).min(lines) - start;
        let mut ops = Vec::new();
        let mut cursor = start;
        let mut rem = count;
        while rem > 0 {
            let chunk = rem.min(8) as u16;
            ops.push(WarpOp::global_load(base.offset(cursor * 128), chunk));
            ops.push(WarpOp::Compute(4));
            cursor += u64::from(chunk);
            rem -= u64::from(chunk);
        }
        kernel.push_warp(ops);
    }

    let mut system = System::new(SystemConfig::paper_default(), mode);
    system.run(program, vec![kernel]).total_cycles.as_u64()
}

fn main() {
    let l2_lines = SystemConfig::paper_default().gpu_l2_total_bytes() / 128;
    println!("GPU L2 capacity: {l2_lines} lines (2 MB)");
    println!();
    println!(
        "{:>10} {:>12} {:>10} {:>10}",
        "lines", "vs capacity", "speedup", ""
    );
    for factor in [2u64, 4, 8, 12, 16, 24, 32, 48] {
        let lines = l2_lines * factor / 16; // 1/8x .. 3x capacity
        let ccsm = run_footprint(lines, Mode::Ccsm);
        let ds = run_footprint(lines, Mode::DirectStore);
        let speedup = (ccsm as f64 / ds as f64 - 1.0) * 100.0;
        let bar = "#".repeat((speedup / 2.0).max(0.0) as usize);
        println!(
            "{:>10} {:>11.2}x {:>9.2}% {}",
            lines,
            lines as f64 / l2_lines as f64,
            speedup,
            bar
        );
    }
    println!();
    println!("The benefit peaks while the pushed footprint fits in the L2 and");
    println!("decays once pushes evict each other before the GPU consumes them.");
}
