//! A guided walk through the modified Hammer protocol (Fig. 3) and the
//! single-line data-movement comparison (Fig. 1).
//!
//! Run with: `cargo run --example protocol_walkthrough`

use direct_store::coherence::{transition, Action, HammerState, ProtocolEvent};
use direct_store::core::trace::trace_single_line;
use direct_store::core::Mode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- the ordinary write path (CCSM) --");
    let t = transition(HammerState::I, ProtocolEvent::Store)?;
    println!("I  + Store       -> {:?} via {:?}", t.next, t.actions);

    println!();
    println!("-- the paper's bold additions: remote stores --");
    for s in [
        HammerState::I,
        HammerState::S,
        HammerState::M,
        HammerState::MM,
    ] {
        let t = transition(s, ProtocolEvent::RemoteStore)?;
        println!(
            "{s:<2} + RemoteStore -> {:?} via {:?}",
            t.stable_next().expect("immediate"),
            t.actions
        );
        assert_eq!(t.actions, vec![Action::ForwardDirect]);
    }

    println!();
    println!("-- the blue dashed edge at the GPU L2 --");
    let t = transition(HammerState::I, ProtocolEvent::PutXArrive)?;
    println!(
        "I  + PutXArrive  -> {:?} via {:?}",
        t.stable_next().expect("immediate"),
        t.actions
    );

    println!();
    println!("-- what this buys: one line, CPU st x ... GPU ld x --");
    for mode in [Mode::Ccsm, Mode::DirectStore, Mode::DirectStoreOnly] {
        println!("{}", trace_single_line(mode));
    }
    Ok(())
}
