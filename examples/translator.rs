//! The automatic code translator on a realistic CUDA-style program.
//!
//! Shows exactly what §III.C describes: kernel-argument capture,
//! `malloc`/`cudaMalloc` → `mmap(MAP_FIXED)` rewriting at incrementing
//! high addresses, and the allocation plan that drives the simulator.
//!
//! Run with: `cargo run --example translator`

use direct_store::xlat::Translator;

const PROGRAM: &str = r#"
#define ROWS 512
#define COLS 512
#define ITER 8

int main(int argc, char **argv) {
    float *temp = (float*)malloc(ROWS * COLS * sizeof(float));
    float *power = (float*)malloc(ROWS * COLS * sizeof(float));
    float *result;
    cudaMalloc((void**)&result, ROWS * COLS * sizeof(float));
    int *bookkeeping = (int*)malloc(1024);

    load_inputs(temp, power);
    for (int i = 0; i < ITER; i++) {
        hotspot_step<<<ROWS/16, 256>>>(temp, power, result, ROWS, COLS);
    }
    cudaDeviceSynchronize();
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Translator::new().translate(PROGRAM)?;

    println!("=== allocation plan ===");
    print!("{}", out.plan);
    println!("scalar kernel arguments: {:?}", out.scalar_args);
    println!();
    println!("=== translated source ===");
    println!("{}", out.source);

    // The bookkeeping buffer never reaches a kernel: untouched.
    assert!(out.source.contains("(int*)malloc(1024)"));
    // The three GPU-visible arrays were rewritten.
    assert_eq!(out.plan.len(), 3);
    Ok(())
}
