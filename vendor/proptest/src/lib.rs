//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate
//! re-implements the slice of proptest's API that the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_filter`, range / tuple / [`Just`] / [`any`] strategies,
//! `collection::vec`, a regex-literal string strategy (character
//! classes and `{m,n}` quantifiers only), and the `proptest!`,
//! `prop_assert*` and `prop_oneof!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the assertion
//!   message; inputs are deterministic per test, so failures replay
//!   exactly by re-running the test.
//! * **Deterministic generation.** Cases come from a fixed-seed
//!   splitmix64 stream; `PROPTEST_CASES` overrides the case count
//!   (default 64).

pub use strategy::{any, Just, Strategy};

/// The number of generated cases per property, honouring the
/// `PROPTEST_CASES` environment variable.
pub fn cases() -> u32 {
    cases_with(ProptestConfig::default().cases)
}

/// Like [`cases`], but with an explicit default from a
/// `#![proptest_config(..)]` block attribute.
pub fn cases_with(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Error type of a failed property case (stub: a plain message; the
/// stub's `prop_assert*` macros panic instead of returning it, but
/// bodies may still `return Ok(())` / `Err(..)` explicitly).
pub type TestCaseError = String;

/// Result type of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-block test configuration (stub: only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; ignored (no shrinking).
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; ignored (filters retry a fixed
    /// 1000 times).
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            max_local_rejects: 1000,
        }
    }
}

/// Deterministic test RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed-seed generator; every property test starts here so runs
    /// are reproducible.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x8505_7ED6_CA35_D9D1,
        }
    }

    /// Next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The strategy trait and its combinators.
pub mod strategy {
    use crate::TestRng;

    /// A generator of values for property tests.
    ///
    /// Object safe: `prop_map` / `prop_filter` are `Self: Sized`, so
    /// `Box<dyn Strategy<Value = T>>` works (the basis of
    /// `prop_oneof!`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards values failing `pred`, regenerating (bounded
        /// retries; `reason` names the filter in the give-up panic).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Type-erases the strategy (for heterogeneous `prop_oneof!`
        /// arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates", self.reason);
        }
    }

    /// A strategy producing exactly its payload, every time.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].generate(rng)
        }
    }

    /// Types with a canonical whole-domain strategy ([`any`]).
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// See [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String literals act as regex-shaped string strategies.
    ///
    /// Supported subset: literal characters, `[...]` classes with
    /// ranges, and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers on the
    /// preceding atom (unbounded quantifiers cap at 8 repeats).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let class = expand_class(&chars[i + 1..close]);
                    i = close + 1;
                    class
                }
                '\\' => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((m, n)) => (parse_count(&spec, m), parse_count(&spec, n)),
                        None => {
                            let m = parse_count(&spec, &spec);
                            (m, m)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom[rng.below(atom.len() as u64) as usize]);
            }
        }
        out
    }

    fn parse_count(spec: &str, field: &str) -> usize {
        field
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}}"))
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                assert!(lo <= hi, "inverted class range");
                set.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// item becomes a `#[test]` that runs the body over generated inputs.
/// An optional leading `#![proptest_config(expr)]` sets the per-block
/// case count.
#[macro_export]
macro_rules! proptest {
    (@cases ($cases:expr)
     $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic();
                for _case in 0..$crate::cases_with($cases) {
                    $(let $p = $crate::strategy::Strategy::generate(&$s, &mut rng);)+
                    // Bodies may `return Ok(())` early, like real
                    // proptest's Result-typed test cases.
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!("property {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cases (($cfg).cases) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cases ($crate::ProptestConfig::default().cases) $($rest)* }
    };
}

/// Asserts a condition inside a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::deterministic();
        let s = (0u64..10, 1usize..3, any::<bool>());
        for _ in 0..200 {
            let (a, b, _) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((1..3).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::deterministic();
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)];
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && (seen[5] || seen[6]));
    }

    #[test]
    fn regex_subset_identifiers() {
        let mut rng = TestRng::deterministic();
        let s = "[a-z][a-z0-9_]{0,8}";
        for _ in 0..200 {
            let ident = Strategy::generate(&s, &mut rng);
            assert!(!ident.is_empty() && ident.len() <= 9, "{ident:?}");
            assert!(ident.chars().next().unwrap().is_ascii_lowercase());
            assert!(ident
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn filter_and_vec() {
        let mut rng = TestRng::deterministic();
        let s = crate::collection::vec((0u32..100).prop_filter("even", |v| v % 2 == 0), 1..20);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 20);
            assert!(v.iter().all(|x| x % 2 == 0));
        }
    }

    proptest! {
        /// The macro itself: bindings, multiple params, trailing comma.
        #[test]
        fn macro_generates_cases(
            xs in crate::collection::vec(0u64..50, 1..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 10);
            let _ = flag;
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 50).count(), 0);
            prop_assert_ne!(xs.len(), 0);
        }
    }
}
