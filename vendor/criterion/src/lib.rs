//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of criterion's API that `ds-bench`'s bench
//! targets use — `Criterion::bench_function`, `benchmark_group` with
//! `sample_size` / `finish`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock measurement loop (warm-up iteration, then `sample_size`
//! timed samples; prints min/mean per benchmark). No statistical
//! analysis, plots, or baselines.

use std::time::{Duration, Instant};

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Measures a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group; measurements print as `group/id`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id.into()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Handed to the measured closure; call [`Bencher::iter`] with the
/// workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` invocations of `f` (after one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<45} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    println!(
        "{id:<45} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Bundles bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // one warm-up + sample_size timed runs
        assert_eq!(runs, 21);
    }

    #[test]
    fn group_sample_size_respected() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("x", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 6);
    }
}
