//! Offline stand-in for the `rand` crate.
//!
//! The workspace's build environment has no network access to the
//! crates.io registry, so the handful of `rand` APIs the simulator
//! actually uses — a seedable PRNG and uniform range sampling — are
//! provided here. The stream is splitmix64, which passes the
//! statistical bar this codebase needs (uniform victim selection and
//! uniform line picks in workload generators) while staying fully
//! deterministic per seed.
//!
//! API-compatible subset: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, next_u64}` over integer `Range`s.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling conveniences layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly samples from `range` (half-open, must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample(range, self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types uniformly sampleable from a `Range`.
pub trait UniformInt: Copy {
    /// Maps one random word into `range`.
    fn sample(range: core::ops::Range<Self>, word: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(range: core::ops::Range<Self>, word: u64) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                range.start + (word % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same}/64 collisions");
    }
}
