//! Integration tests of the translator driving the simulator's memory
//! layout — §III.C through §III.E glued together.

use direct_store::core::{InputSize, Scenario};
use direct_store::cpu::{CpuOp, DirectWindow};
use direct_store::workloads::catalog;
use direct_store::xlat::Translator;

/// Every Table II benchmark's emitted source translates, and the plan
/// covers every array with non-overlapping page-aligned regions in the
/// direct window.
#[test]
fn all_benchmark_sources_translate_with_sound_plans() {
    let window = DirectWindow::paper_default();
    for b in catalog::all() {
        for input in [InputSize::Small, InputSize::Big] {
            let spec = b.spec(input);
            let out = Translator::new()
                .translate(&spec.emit_source())
                .unwrap_or_else(|e| panic!("{}: {e}", b.code()));
            assert_eq!(out.plan.len(), spec.arrays.len(), "{}", b.code());
            let vars = out.plan.vars();
            for v in vars {
                assert!(
                    window.contains(v.base),
                    "{}: {} outside window",
                    b.code(),
                    v.name
                );
                assert_eq!(v.base.as_u64() % 4096, 0, "{}: unaligned", b.code());
                let declared = spec
                    .arrays
                    .iter()
                    .find(|a| a.name == v.name)
                    .unwrap_or_else(|| panic!("{}: unknown var {}", b.code(), v.name));
                assert_eq!(declared.bytes, v.size, "{}: size mismatch", b.code());
            }
            for (i, v) in vars.iter().enumerate() {
                for w in &vars[i + 1..] {
                    let v_end = v.base.offset(v.size);
                    let w_end = w.base.offset(w.size);
                    assert!(
                        v_end <= w.base || w_end <= v.base,
                        "{}: {} overlaps {}",
                        b.code(),
                        v.name,
                        w.name
                    );
                }
            }
        }
    }
}

/// Under direct store, every produced store the CPU program issues
/// targets the translator-planned window; under CCSM none do.
#[test]
fn programs_respect_their_layout() {
    let window = DirectWindow::paper_default();
    let b = catalog::by_code("BL").unwrap();

    let ccsm = b.build(None, InputSize::Small);
    for op in ccsm.program.ops() {
        if let CpuOp::Store(va) = op {
            assert!(!window.contains(*va), "CCSM store in window: {va}");
        }
    }

    let plan = Translator::new()
        .translate(&b.source(InputSize::Small))
        .unwrap()
        .plan;
    let ds = b.build(Some(&plan), InputSize::Small);
    let mut stores = 0;
    for op in ds.program.ops() {
        if let CpuOp::Store(va) = op {
            assert!(window.contains(*va), "DS store outside window: {va}");
            stores += 1;
        }
    }
    assert!(stores > 0);
    // Same shape either way: identical op counts.
    assert_eq!(ccsm.program.len(), ds.program.len());
    assert_eq!(ccsm.program.stores(), ds.program.stores());
}

/// Translation is a no-op for sources without kernels and idempotent
/// on its own output.
#[test]
fn translation_is_idempotent_across_catalog() {
    for b in catalog::all().into_iter().take(5) {
        let src = b.source(InputSize::Small);
        let once = Translator::new().translate(&src).unwrap();
        let twice = Translator::new().translate(&once.source).unwrap();
        assert!(twice.plan.is_empty(), "{}: second pass rewrote", b.code());
        assert_eq!(once.source, twice.source, "{}", b.code());
    }
}
