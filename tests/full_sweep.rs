//! The full 22-benchmark evaluation as a gated regression test.
//!
//! Runs the complete Fig. 4/Fig. 5 sweep at both input sizes (a few
//! minutes) and asserts the paper-shape properties the reproduction
//! stands on. Ignored by default; run with
//!
//! ```text
//! cargo test --release --test full_sweep -- --ignored
//! ```

use direct_store::core::{InputSize, Pipeline, Scenario};
use direct_store::workloads::catalog;

#[test]
#[ignore = "full sweep takes minutes; run with --ignored in release"]
fn paper_shape_holds_across_the_full_suite() {
    let pipeline = Pipeline::paper_default();

    for input in [InputSize::Small, InputSize::Big] {
        let mut speedups = Vec::new();
        for b in catalog::all() {
            let c = pipeline
                .run_comparison(&b, input)
                .unwrap_or_else(|e| panic!("{} {input}: {e}", b.code()));
            let (mc, md) = c.miss_rates();
            // Fig. 5 direction: the miss rate never increases under DS
            // beyond measurement noise.
            assert!(
                md <= mc + 0.01,
                "{} {input}: miss rate rose {mc} -> {md}",
                c.code
            );
            // Compulsory misses never increase.
            let (cc, cd) = c.compulsory_misses();
            assert!(cd <= cc, "{} {input}: compulsory rose", c.code);
            speedups.push((c.code.clone(), c.speedup_percent()));
        }
        // "Never hurts", with the documented MM/MT big-input exception
        // (EXPERIMENTS.md).
        for (code, pct) in &speedups {
            let exempt = input == InputSize::Big && (code == "MM" || code == "MT");
            assert!(
                *pct > -1.5 || exempt,
                "{code} {input}: direct store hurt by {pct:.2}%"
            );
        }
        // The headline winners clear 10% at small inputs.
        if input == InputSize::Small {
            for code in ["NN", "VA", "MM"] {
                let pct = speedups
                    .iter()
                    .find(|(c, _)| c == code)
                    .map(|&(_, p)| p)
                    .unwrap();
                assert!(pct > 10.0, "{code} small: expected >10%, got {pct:.2}%");
            }
        }
        // The null case stays null.
        let pt = speedups
            .iter()
            .find(|(c, _)| c == "PT")
            .map(|&(_, p)| p)
            .unwrap();
        assert!(pt.abs() < 3.0, "PT {input}: {pt:.2}%");
    }
}
