//! Property-based integration tests: randomized producer-consumer
//! workloads driven through the full system under every mode, checking
//! the invariants that must hold regardless of workload shape.

use proptest::prelude::*;

use direct_store::core::{Mode, System, SystemConfig};
use direct_store::cpu::{CpuOp, Program};
use direct_store::gpu::{KernelTrace, WarpOp};
use direct_store::mem::VirtAddr;

/// A compact random workload description.
#[derive(Debug, Clone)]
struct RandomWorkload {
    produced_lines: u64,
    consume_stride: u32,
    warps: u64,
    compute: u32,
    write_back_lines: u64,
    launches: u8,
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (8u64..400, 1u32..6, 1u64..40, 0u32..12, 0u64..64, 1u8..3).prop_map(
        |(produced_lines, consume_stride, warps, compute, write_back_lines, launches)| {
            RandomWorkload {
                produced_lines,
                consume_stride,
                warps,
                compute,
                write_back_lines,
                launches,
            }
        },
    )
}

fn build(w: &RandomWorkload) -> (Program, Vec<KernelTrace>) {
    let base = VirtAddr::new(0x7f00_0000_0000);
    let out = VirtAddr::new(0x7f10_0000_0000);
    let mut program = Program::new();
    program.store_array(base, w.produced_lines * 128, w.compute);
    let mut kernel = KernelTrace::new("consume");
    let touched = w.produced_lines / u64::from(w.consume_stride) + 1;
    let per = touched.div_ceil(w.warps).max(1);
    for warp in 0..w.warps {
        let mut ops = Vec::new();
        let start = warp * per;
        for i in start..(start + per).min(touched) {
            ops.push(WarpOp::GlobalLoad {
                base: base.offset(i * u64::from(w.consume_stride) * 128),
                count: 1,
                stride_lines: 1,
            });
            if w.compute > 0 {
                ops.push(WarpOp::Compute(w.compute));
            }
        }
        if warp < w.write_back_lines {
            ops.push(WarpOp::global_store(out.offset(warp * 128), 1));
        }
        kernel.push_warp(ops);
    }
    for _ in 0..w.launches {
        program.push(CpuOp::Launch(0));
        program.push(CpuOp::WaitGpu);
    }
    program.push(CpuOp::Load(base));
    (program, vec![kernel])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// Every random workload completes in every mode (no deadlock, no
    /// protocol panic, invariants checked at end of run in debug
    /// builds), and direct store never loses more than a sliver.
    #[test]
    fn random_workloads_complete_in_all_modes(w in workload_strategy()) {
        let mut cycles = Vec::new();
        for mode in [Mode::Ccsm, Mode::DirectStore, Mode::DirectStoreOnly] {
            let (program, kernels) = build(&w);
            let mut system = System::new(SystemConfig::paper_default(), mode);
            let report = system.run(program, kernels);
            prop_assert!(report.total_cycles.as_u64() > 0);
            prop_assert_eq!(report.kernels_run, u64::from(w.launches));
            cycles.push(report.total_cycles.as_u64());
        }
        // "Never decreases performance": allow a small tolerance for
        // scheduling noise on tiny workloads.
        let (ccsm, ds) = (cycles[0] as f64, cycles[1] as f64);
        prop_assert!(
            ds <= ccsm * 1.05,
            "direct store slower: {} vs {}", ds, ccsm
        );
    }

    /// The same workload always produces the same result (determinism
    /// under arbitrary shapes, not just the catalog).
    #[test]
    fn random_workloads_are_deterministic(w in workload_strategy()) {
        let run = |w: &RandomWorkload| {
            let (program, kernels) = build(w);
            let mut system = System::new(SystemConfig::paper_default(), Mode::DirectStore);
            let r = system.run(program, kernels);
            (r.total_cycles, r.gpu_l2.misses.value(), r.direct_pushes, r.events)
        };
        prop_assert_eq!(run(&w), run(&w));
    }

    /// Push accounting: the number of pushes equals the produced
    /// distinct lines (coalesced), and every push lands exactly once.
    #[test]
    fn push_accounting_is_exact(w in workload_strategy()) {
        let (program, kernels) = build(&w);
        let mut system = System::new(SystemConfig::paper_default(), Mode::DirectStore);
        let report = system.run(program, kernels);
        prop_assert_eq!(report.direct_pushes, w.produced_lines);
        prop_assert_eq!(report.gpu_l2.pushed_fills.value(), w.produced_lines);
    }
}
