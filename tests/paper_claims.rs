//! Integration tests asserting the paper's qualitative claims hold in
//! the reproduction, end to end (translator → layout → simulation).

use direct_store::core::{trace, InputSize, Mode, Pipeline};
use direct_store::workloads::catalog;

fn compare(code: &str, input: InputSize) -> direct_store::core::Comparison {
    let b = catalog::by_code(code).expect("catalog benchmark");
    Pipeline::paper_default()
        .run_comparison(&b, input)
        .expect("pipeline run")
}

/// §IV.C: "the proposed approach never decreases performance".
#[test]
fn direct_store_never_hurts_representatives() {
    for code in ["VA", "NN", "PT", "GA", "HT", "MS"] {
        let c = compare(code, InputSize::Small);
        assert!(
            c.speedup() > 0.98,
            "{code}: direct store slowed the run: {:.2}%",
            c.speedup_percent()
        );
    }
}

/// §I: "performance by up to 37%" — the best benchmarks show large
/// gains while the null case shows none.
#[test]
fn headline_winners_win_and_pt_is_flat() {
    let nn = compare("NN", InputSize::Small);
    assert!(
        nn.speedup_percent() > 10.0,
        "NN must exceed 10%: {:.2}%",
        nn.speedup_percent()
    );
    let pt = compare("PT", InputSize::Small);
    assert!(
        pt.speedup_percent().abs() < 3.0,
        "PT's CPU produces nothing for the GPU; got {:.2}%",
        pt.speedup_percent()
    );
}

/// §IV.D: the GPU L2 miss rate drops under direct store, and the
/// reduction is specifically in compulsory misses.
#[test]
fn miss_rate_and_compulsory_reduction() {
    for code in ["VA", "NN", "BP"] {
        let c = compare(code, InputSize::Small);
        let (mc, md) = c.miss_rates();
        assert!(md < mc, "{code}: miss rate must drop ({mc} -> {md})");
        let (cc, cd) = c.compulsory_misses();
        assert!(
            cd < cc,
            "{code}: compulsory misses must drop ({cc} -> {cd})"
        );
    }
}

/// §IV.D (PT): "the total misses and the total cache accesses to GPU
/// L2 cache also do not change" when the CPU produces nothing.
#[test]
fn pt_miss_behaviour_is_identical() {
    let c = compare("PT", InputSize::Small);
    assert_eq!(
        c.ccsm.gpu_l2.misses.value(),
        c.direct_store.gpu_l2.misses.value()
    );
    assert_eq!(c.direct_store.direct_pushes, 0);
}

/// Fig. 1: the direct-store path uses the dedicated network and
/// removes the pull chain's coherence traffic.
#[test]
fn dataflow_comparison_matches_figure_one() {
    let ccsm = trace::trace_single_line(Mode::Ccsm);
    let ds = trace::trace_single_line(Mode::DirectStore);
    assert_eq!(ccsm.direct_msgs, 0);
    assert!(ds.direct_msgs >= 3, "GETX + PUTX + ack");
    assert_eq!(ds.gpu_l2_misses, 0, "pushed line hits on first access");
    assert_eq!(ccsm.gpu_l2_misses, 1);
    assert!(ds.total_cycles < ccsm.total_cycles);
}

/// §III.H: direct store as a stand-alone replacement exchanges no
/// coherence messages at all.
#[test]
fn replacement_mode_eliminates_coherence_traffic() {
    let b = catalog::by_code("VA").unwrap();
    let r = Pipeline::paper_default()
        .replacement_mode()
        .run_comparison(&b, InputSize::Small)
        .unwrap();
    assert_eq!(r.direct_store.coh_net.total_msgs(), 0);
    assert!(r.direct_store.direct_pushes > 0);
}

/// The simulator is deterministic: identical runs produce identical
/// tick counts and statistics.
#[test]
fn runs_are_deterministic() {
    let a = compare("BF", InputSize::Small);
    let b = compare("BF", InputSize::Small);
    assert_eq!(a.ccsm.total_cycles, b.ccsm.total_cycles);
    assert_eq!(a.direct_store.total_cycles, b.direct_store.total_cycles);
    assert_eq!(a.ccsm.gpu_l2.misses.value(), b.ccsm.gpu_l2.misses.value());
    assert_eq!(a.ccsm.events, b.ccsm.events);
}
