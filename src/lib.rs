//! # direct-store
//!
//! A production-quality Rust reproduction of *"A Simple Cache Coherence
//! Scheme for Integrated CPU-GPU Systems"* (Yudha, Pulungan, Hoffmann,
//! Solihin — DAC 2020).
//!
//! The paper proposes **direct store**: a push-based coherence mechanism
//! for integrated CPU-GPU chips in which data the GPU will consume is
//! *homed* in the GPU L2. A source-to-source translator rewrites
//! `malloc`/`cudaMalloc` of kernel-referenced variables into
//! `mmap(MAP_FIXED)` allocations in a reserved high virtual-address
//! range; the CPU TLB detects stores to that range and forwards them over
//! a dedicated network straight to the GPU L2, where the arriving `PUTX`
//! transitions the line `I → MM`. The GPU's first access then hits
//! locally, cutting compulsory misses and load latency.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — event-driven simulation kernel
//! * [`mem`] — addresses, virtual memory and the DRAM model
//! * [`cache`] — set-associative arrays, MSHRs, miss classification
//! * [`noc`] — interconnect models including the dedicated direct network
//! * [`coherence`] — the MOESI-Hammer-style protocol and the direct-store
//!   extension (the paper's Fig. 3)
//! * [`cpu`] — CPU core, TLB with direct-range detection, MMU, allocators
//! * [`gpu`] — SMs, warps, coalescing, per-SM L1s, sliced shared L2
//! * [`xlat`] — the automatic source-to-source translator (paper §III.C)
//! * [`core`] — system assembly and the end-to-end experiment pipeline
//! * [`workloads`] — the 22 Table II benchmarks as pattern generators
//!
//! # Quickstart
//!
//! ```
//! use direct_store::core::{InputSize, Pipeline};
//! use direct_store::workloads::catalog;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let va = catalog::by_code("VA").expect("vector-add is in Table II");
//! let outcome = Pipeline::paper_default().run_comparison(&va, InputSize::Small)?;
//! println!(
//!     "VA/small: speedup {:.2}%, GPU L2 miss rate {:.2}% -> {:.2}%",
//!     outcome.speedup_percent(),
//!     outcome.ccsm.gpu_l2_miss_rate() * 100.0,
//!     outcome.direct_store.gpu_l2_miss_rate() * 100.0,
//! );
//! assert!(outcome.speedup() >= 1.0);
//! # Ok(())
//! # }
//! ```

pub use ds_cache as cache;
pub use ds_coherence as coherence;
pub use ds_core as core;
pub use ds_cpu as cpu;
pub use ds_gpu as gpu;
pub use ds_mem as mem;
pub use ds_noc as noc;
pub use ds_sim as sim;
pub use ds_workloads as workloads;
pub use ds_xlat as xlat;
